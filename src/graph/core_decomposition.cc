#include "graph/core_decomposition.h"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <tuple>

#include "common/logging.h"

namespace dcs {
namespace {

// Scans below this size run inline even when a pool is available: the
// shard bookkeeping would cost more than the scan. Purely a scheduling
// choice — the partition below is contiguous ascending ranges either way,
// so results never depend on which path ran.
constexpr std::size_t kMinParallelScan = 2048;

std::vector<ShardRange> PeelShards(ThreadPool* pool, std::size_t count) {
  return pool != nullptr && count >= kMinParallelScan
             ? pool->ShardsFor(count)
             : MakeShards(count, 1);
}

void RunPeelShards(ThreadPool* pool, const std::vector<ShardRange>& shards,
                   const std::function<void(const ShardRange&)>& fn) {
  if (pool != nullptr && shards.size() > 1) {
    pool->RunShards(shards, fn);
  } else {
    for (const ShardRange& shard : shards) fn(shard);
  }
}

// Canonical wave peeling for kMinDegree (see docs/PARALLELISM.md).
//
// At the current minimum degree d, the set of vertices a min-degree peel
// removes before the residual minimum first exceeds d is the complement of
// the (d+1)-core — a graph invariant, identical under every tie-break. The
// wave removes that set in cascade rounds (round 0: every alive vertex at
// degree <= d; round k+1: neighbors dragged to <= d by round k), each round
// in ascending vertex id. Only the final wave, which would drop the graph
// below beta, is peeled one vertex at a time under a strict (degree, id)
// order. Serial and sharded execution run this same algorithm; the sharded
// scans merge per-shard results in ascending shard order (concatenation of
// contiguous ranges) or by min(), so the output is bit-identical at any
// thread count.
PeelResult PeelMinDegreeWaves(const Graph& graph, std::size_t beta,
                              ThreadPool* pool) {
  const std::size_t n = graph.num_vertices();
  PeelResult result;
  if (n == 0) return result;

  // Residual degrees, sharded (pure per-vertex writes).
  std::vector<std::size_t> degree(n);
  {
    const std::vector<ShardRange> shards = PeelShards(pool, n);
    RunPeelShards(pool, shards, [&](const ShardRange& shard) {
      for (std::size_t v = shard.begin; v < shard.end; ++v) {
        degree[v] = graph.degree(static_cast<Graph::VertexId>(v));
      }
    });
  }

  std::vector<char> removed(n, 0);
  // Cascade-round stamp per vertex: lets the degree update test "was this
  // neighbor removed in the current round" without an O(n) clear per round.
  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t round = 0;
  std::size_t alive = n;
  if (n > beta) result.removal_order.reserve(n - beta);

  std::vector<Graph::VertexId> frontier;
  std::vector<Graph::VertexId> candidates;
  bool tail = false;

  while (alive > beta && !tail) {
    // Minimum residual degree among alive vertices. Per-shard minima merge
    // with min(), which is insensitive to merge order.
    std::size_t wave_degree = std::numeric_limits<std::size_t>::max();
    {
      const std::vector<ShardRange> shards = PeelShards(pool, n);
      std::vector<std::size_t> shard_min(
          shards.size(), std::numeric_limits<std::size_t>::max());
      RunPeelShards(pool, shards, [&](const ShardRange& shard) {
        std::size_t local = std::numeric_limits<std::size_t>::max();
        for (std::size_t v = shard.begin; v < shard.end; ++v) {
          if (!removed[v]) local = std::min(local, degree[v]);
        }
        shard_min[shard.index] = local;
      });
      for (const std::size_t m : shard_min) {
        wave_degree = std::min(wave_degree, m);
      }
    }
    DCS_CHECK(wave_degree != std::numeric_limits<std::size_t>::max());

    // Round 0 of the wave: every alive vertex at or below the wave level,
    // ascending (contiguous shards concatenated in shard order).
    frontier.clear();
    {
      const std::vector<ShardRange> shards = PeelShards(pool, n);
      std::vector<std::vector<Graph::VertexId>> shard_hits(shards.size());
      RunPeelShards(pool, shards, [&](const ShardRange& shard) {
        for (std::size_t v = shard.begin; v < shard.end; ++v) {
          if (!removed[v] && degree[v] <= wave_degree) {
            shard_hits[shard.index].push_back(
                static_cast<Graph::VertexId>(v));
          }
        }
      });
      for (const std::vector<Graph::VertexId>& hits : shard_hits) {
        frontier.insert(frontier.end(), hits.begin(), hits.end());
      }
    }

    bool removed_this_wave = false;
    while (!frontier.empty()) {
      if (alive - frontier.size() < beta) {
        // Removing this whole round would overshoot; the strict tail
        // finishes the job one vertex at a time.
        tail = true;
        break;
      }
      ++round;
      for (Graph::VertexId v : frontier) {
        removed[v] = 1;
        stamp[v] = round;
        result.removal_order.push_back(v);
      }
      alive -= frontier.size();
      removed_this_wave = true;

      // Alive vertices adjacent to the removed round, deduplicated and
      // ascending (sort after a shard-order concatenation).
      candidates.clear();
      {
        const std::vector<ShardRange> shards =
            PeelShards(pool, frontier.size());
        std::vector<std::vector<Graph::VertexId>> shard_hits(shards.size());
        RunPeelShards(pool, shards, [&](const ShardRange& shard) {
          for (std::size_t i = shard.begin; i < shard.end; ++i) {
            for (Graph::VertexId w : graph.neighbors(frontier[i])) {
              if (!removed[w]) shard_hits[shard.index].push_back(w);
            }
          }
        });
        for (const std::vector<Graph::VertexId>& hits : shard_hits) {
          candidates.insert(candidates.end(), hits.begin(), hits.end());
        }
        std::sort(candidates.begin(), candidates.end());
        candidates.erase(std::unique(candidates.begin(), candidates.end()),
                         candidates.end());
      }

      // Each candidate loses exactly its edges into the round. One writer
      // per candidate, so the sharded update has no races and the new
      // degrees are a pure function of (graph, round set).
      {
        const std::vector<ShardRange> shards =
            PeelShards(pool, candidates.size());
        RunPeelShards(pool, shards, [&](const ShardRange& shard) {
          for (std::size_t i = shard.begin; i < shard.end; ++i) {
            const Graph::VertexId w = candidates[i];
            std::size_t lost = 0;
            for (Graph::VertexId u : graph.neighbors(w)) {
              if (stamp[u] == round) ++lost;
            }
            degree[w] -= lost;
          }
        });
      }

      // Next round: candidates dragged to or below the wave level. The
      // candidate list is ascending, so the next round is too.
      frontier.clear();
      for (Graph::VertexId w : candidates) {
        if (degree[w] <= wave_degree) frontier.push_back(w);
      }
    }
    if (removed_this_wave) ++result.waves;
  }

  if (alive > beta) {
    // Strict tail: lazy-deletion min-heap on (degree, id). The graph state
    // here is a pure function of (input graph, beta) — every full wave was
    // an order-invariant k-core complement — so the tail, though serial, is
    // reached with identical state at any thread count.
    using Entry = std::pair<std::size_t, Graph::VertexId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
    for (std::size_t v = 0; v < n; ++v) {
      if (!removed[v]) {
        heap.emplace(degree[v], static_cast<Graph::VertexId>(v));
      }
    }
    while (alive > beta) {
      DCS_CHECK(!heap.empty());
      const auto [key, v] = heap.top();
      heap.pop();
      if (removed[v] || key != degree[v]) continue;  // Stale entry.
      removed[v] = 1;
      --alive;
      result.removal_order.push_back(v);
      ++result.tail_removals;
      for (Graph::VertexId w : graph.neighbors(v)) {
        if (removed[w]) continue;
        --degree[w];
        heap.emplace(degree[w], w);
      }
    }
  }

  result.core.reserve(alive);
  for (std::size_t v = 0; v < n; ++v) {
    if (!removed[v]) result.core.push_back(static_cast<Graph::VertexId>(v));
  }
  return result;
}

// Lazy-deletion heap peeling for the max-degree ablation baseline.
// Entries are (key, vertex); stale entries (key != current degree) are
// skipped on pop. Total pushes are O(V + E), so cost is O((V+E) log V).
PeelResult PeelMaxDegreeHeap(const Graph& graph, std::size_t beta) {
  constexpr bool min_side = false;
  const std::size_t n = graph.num_vertices();
  std::vector<std::int64_t> degree(n);
  std::vector<char> removed(n, 0);

  using Entry = std::pair<std::int64_t, Graph::VertexId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  for (std::size_t v = 0; v < n; ++v) {
    degree[v] = static_cast<std::int64_t>(graph.degree(
        static_cast<Graph::VertexId>(v)));
    const std::int64_t key = min_side ? degree[v] : -degree[v];
    heap.emplace(key, static_cast<Graph::VertexId>(v));
  }

  PeelResult result;
  result.removal_order.reserve(n > beta ? n - beta : 0);
  std::size_t remaining = n;
  while (remaining > beta && !heap.empty()) {
    const auto [key, v] = heap.top();
    heap.pop();
    const std::int64_t current = min_side ? degree[v] : -degree[v];
    if (removed[v] || key != current) continue;  // Stale entry.
    removed[v] = 1;
    --remaining;
    result.removal_order.push_back(v);
    for (Graph::VertexId w : graph.neighbors(v)) {
      if (removed[w]) continue;
      --degree[w];
      heap.emplace(min_side ? degree[w] : -degree[w], w);
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!removed[v]) result.core.push_back(static_cast<Graph::VertexId>(v));
  }
  return result;
}

PeelResult PeelRandom(const Graph& graph, std::size_t beta, Rng* rng) {
  DCS_CHECK(rng != nullptr);
  const std::size_t n = graph.num_vertices();
  std::vector<Graph::VertexId> remaining(n);
  for (std::size_t v = 0; v < n; ++v) {
    remaining[v] = static_cast<Graph::VertexId>(v);
  }
  PeelResult result;
  while (remaining.size() > beta) {
    const std::size_t pick = rng->UniformInt(remaining.size());
    result.removal_order.push_back(remaining[pick]);
    remaining[pick] = remaining.back();
    remaining.pop_back();
  }
  std::sort(remaining.begin(), remaining.end());
  result.core = std::move(remaining);
  return result;
}

}  // namespace

PeelResult PeelToSize(const Graph& graph, std::size_t beta,
                      PeelStrategy strategy, Rng* rng, ThreadPool* pool) {
  DCS_CHECK(graph.finalized());
  switch (strategy) {
    case PeelStrategy::kMinDegree:
      return PeelMinDegreeWaves(graph, beta, pool);
    case PeelStrategy::kMaxDegree:
      return PeelMaxDegreeHeap(graph, beta);
    case PeelStrategy::kRandom:
      return PeelRandom(graph, beta, rng);
  }
  DCS_CHECK(false) << "unknown strategy";
  return {};
}

}  // namespace dcs
