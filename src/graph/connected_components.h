#ifndef DCS_GRAPH_CONNECTED_COMPONENTS_H_
#define DCS_GRAPH_CONNECTED_COMPONENTS_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace dcs {

/// Connected-component structure of a graph.
struct ComponentStats {
  /// Component id of every vertex (dense, arbitrary order).
  std::vector<std::uint32_t> component_of;
  /// Size of each component, indexed by component id.
  std::vector<std::size_t> component_sizes;
  /// Size of the largest component (0 for an empty graph).
  std::size_t largest = 0;
};

/// Computes connected components via union-find over the edge list. The
/// graph does not need to be finalized.
ComponentStats ConnectedComponents(const Graph& graph);

/// Just the largest component size — the Erdős–Rényi test statistic
/// (Section IV-B).
std::size_t LargestComponentSize(const Graph& graph);

/// The vertex ids of the largest component (smallest such component id on
/// ties).
std::vector<Graph::VertexId> LargestComponentVertices(const Graph& graph);

}  // namespace dcs

#endif  // DCS_GRAPH_CONNECTED_COMPONENTS_H_
