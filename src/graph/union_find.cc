#include "graph/union_find.h"

#include <numeric>

#include "common/logging.h"

namespace dcs {

UnionFind::UnionFind(std::size_t n)
    : parent_(n), size_(n, 1), num_sets_(n) {
  std::iota(parent_.begin(), parent_.end(), 0);
}

std::uint32_t UnionFind::Find(std::uint32_t x) {
  DCS_CHECK(x < parent_.size());
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // Path halving.
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(std::uint32_t a, std::uint32_t b) {
  std::uint32_t ra = Find(a);
  std::uint32_t rb = Find(b);
  if (ra == rb) return false;
  if (size_[ra] < size_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  size_[ra] += size_[rb];
  --num_sets_;
  return true;
}

std::size_t UnionFind::SetSize(std::uint32_t x) { return size_[Find(x)]; }

}  // namespace dcs
