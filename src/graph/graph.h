#ifndef DCS_GRAPH_GRAPH_H_
#define DCS_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

namespace dcs {

/// \brief Undirected simple graph with CSR adjacency.
///
/// The unaligned-case analysis induces graphs whose vertices are traffic
/// groups and whose edges mark suspiciously-correlated sketch rows
/// (Section IV-B); the detectors need degrees, neighbor iteration and
/// component queries, all provided here. Vertices are dense [0, n) ids.
class Graph {
 public:
  using VertexId = std::uint32_t;

  /// An edgeless graph on `num_vertices` vertices.
  explicit Graph(std::size_t num_vertices);

  /// Adds the undirected edge {u, v}. Self loops are rejected; duplicate
  /// edges are deduplicated at Finalize(). Invalidates adjacency until the
  /// next Finalize().
  void AddEdge(VertexId u, VertexId v);

  /// Builds the CSR adjacency (sorting and deduplicating edges). Must be
  /// called after the last AddEdge and before degree()/neighbors().
  void Finalize();

  std::size_t num_vertices() const { return num_vertices_; }

  /// Number of distinct edges; requires Finalize().
  std::size_t num_edges() const { return edges_.size(); }

  /// Degree of v; requires Finalize().
  std::size_t degree(VertexId v) const;

  /// Neighbors of v in ascending order; requires Finalize().
  std::span<const VertexId> neighbors(VertexId v) const;

  /// The deduplicated edge list (u < v per edge); requires Finalize().
  const std::vector<std::pair<VertexId, VertexId>>& edges() const {
    return edges_;
  }

  /// True once Finalize() has run with no AddEdge since.
  bool finalized() const { return finalized_; }

 private:
  std::size_t num_vertices_;
  std::vector<std::pair<VertexId, VertexId>> edges_;
  std::vector<std::size_t> adjacency_offsets_;
  std::vector<VertexId> adjacency_;
  bool finalized_ = false;
};

}  // namespace dcs

#endif  // DCS_GRAPH_GRAPH_H_
