#include "graph/graph.h"

#include <algorithm>

#include "common/logging.h"

namespace dcs {

Graph::Graph(std::size_t num_vertices) : num_vertices_(num_vertices) {}

void Graph::AddEdge(VertexId u, VertexId v) {
  DCS_CHECK(u < num_vertices_ && v < num_vertices_);
  DCS_CHECK(u != v);
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
  finalized_ = false;
}

void Graph::Finalize() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());

  adjacency_offsets_.assign(num_vertices_ + 1, 0);
  for (const auto& [u, v] : edges_) {
    ++adjacency_offsets_[u + 1];
    ++adjacency_offsets_[v + 1];
  }
  for (std::size_t i = 1; i <= num_vertices_; ++i) {
    adjacency_offsets_[i] += adjacency_offsets_[i - 1];
  }
  adjacency_.resize(2 * edges_.size());
  std::vector<std::size_t> cursor(adjacency_offsets_.begin(),
                                  adjacency_offsets_.end() - 1);
  for (const auto& [u, v] : edges_) {
    adjacency_[cursor[u]++] = v;
    adjacency_[cursor[v]++] = u;
  }
  // Edges are processed in sorted order, so each vertex's neighbor list is
  // already ascending.
  finalized_ = true;
}

std::size_t Graph::degree(VertexId v) const {
  DCS_CHECK(finalized_);
  DCS_CHECK(v < num_vertices_);
  return adjacency_offsets_[v + 1] - adjacency_offsets_[v];
}

std::span<const Graph::VertexId> Graph::neighbors(VertexId v) const {
  DCS_CHECK(finalized_);
  DCS_CHECK(v < num_vertices_);
  return std::span<const VertexId>(
      adjacency_.data() + adjacency_offsets_[v],
      adjacency_offsets_[v + 1] - adjacency_offsets_[v]);
}

}  // namespace dcs
