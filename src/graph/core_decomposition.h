#ifndef DCS_GRAPH_CORE_DECOMPOSITION_H_
#define DCS_GRAPH_CORE_DECOMPOSITION_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "graph/graph.h"

namespace dcs {

/// Vertex-removal policies for the peeling game of the paper's Appendix.
/// kMinDegree is the paper's FindCore (Fig 10) and is stochastically optimal
/// under its computation model; the others are ablation baselines.
enum class PeelStrategy {
  kMinDegree,  ///< Always delete a vertex of smallest residual degree.
  kMaxDegree,  ///< Adversarial baseline: delete a largest-degree vertex.
  kRandom,     ///< Neutral baseline: delete a uniformly random vertex.
};

/// Result of peeling a graph down to `beta` vertices.
struct PeelResult {
  /// The surviving vertices (the paper's V_core), ascending.
  std::vector<Graph::VertexId> core;
  /// Deleted vertices in deletion order (length n - beta).
  std::vector<Graph::VertexId> removal_order;
};

/// \brief The paper's FindCore (Fig 10) generalized over PeelStrategy.
///
/// Repeatedly deletes one vertex (and its incident edges) according to the
/// strategy until `beta` vertices remain. Requires a finalized graph; cost
/// O(V + E) for kMinDegree (bucket queue), O(V log V + E) otherwise.
/// `rng` is only used by kRandom and may be null for the other strategies;
/// kMinDegree/kMaxDegree break ties by smallest vertex id (deterministic).
PeelResult PeelToSize(const Graph& graph, std::size_t beta,
                      PeelStrategy strategy, Rng* rng);

/// Convenience wrapper with the paper's semantics.
inline PeelResult FindCore(const Graph& graph, std::size_t beta) {
  return PeelToSize(graph, beta, PeelStrategy::kMinDegree, nullptr);
}

}  // namespace dcs

#endif  // DCS_GRAPH_CORE_DECOMPOSITION_H_
