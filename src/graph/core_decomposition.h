#ifndef DCS_GRAPH_CORE_DECOMPOSITION_H_
#define DCS_GRAPH_CORE_DECOMPOSITION_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "graph/graph.h"

namespace dcs {

/// Vertex-removal policies for the peeling game of the paper's Appendix.
/// kMinDegree is the paper's FindCore (Fig 10) and is stochastically optimal
/// under its computation model; the others are ablation baselines.
enum class PeelStrategy {
  kMinDegree,  ///< Always delete a vertex of smallest residual degree.
  kMaxDegree,  ///< Adversarial baseline: delete a largest-degree vertex.
  kRandom,     ///< Neutral baseline: delete a uniformly random vertex.
};

/// Result of peeling a graph down to `beta` vertices.
struct PeelResult {
  /// The surviving vertices (the paper's V_core), ascending.
  std::vector<Graph::VertexId> core;
  /// Deleted vertices in deletion order (length n - beta). For kMinDegree
  /// this is the canonical wave order documented in docs/PARALLELISM.md:
  /// whole waves (the complement of the next k-core) in cascade sub-rounds
  /// of ascending vertex id, then a strict (degree, id) tail for the final
  /// partial wave. The order is a pure function of the graph and beta.
  std::vector<Graph::VertexId> removal_order;
  /// Number of full cascade waves kMinDegree executed (k-core waypoints
  /// passed through); 0 for the other strategies.
  std::size_t waves = 0;
  /// Vertices removed one-at-a-time by kMinDegree's strict-tail phase (the
  /// final wave that would have overshot beta); 0 for other strategies.
  std::size_t tail_removals = 0;
};

/// \brief The paper's FindCore (Fig 10) generalized over PeelStrategy.
///
/// Repeatedly deletes one vertex (and its incident edges) according to the
/// strategy until `beta` vertices remain. Requires a finalized graph.
///
/// kMinDegree peels in cascade waves: at the current minimum degree d it
/// removes the full complement of the (d+1)-core (a graph invariant — the
/// same set under ANY min-degree tie-break), and only the last, partial
/// wave is peeled one vertex at a time under a strict (degree, id) order.
/// With a non-null `pool` the per-wave scans (initial degrees, minimum
/// degree, frontier collection, degree updates) are sharded and merged in
/// ascending shard order, so the result is bit-identical at any thread
/// count, including pool == nullptr. Cost is O(V + E) per wave plus an
/// O(V) minimum scan per wave.
///
/// `rng` is only used by kRandom and may be null for the other strategies;
/// `pool` is only used by kMinDegree.
PeelResult PeelToSize(const Graph& graph, std::size_t beta,
                      PeelStrategy strategy, Rng* rng,
                      ThreadPool* pool = nullptr);

/// Convenience wrapper with the paper's semantics.
inline PeelResult FindCore(const Graph& graph, std::size_t beta,
                           ThreadPool* pool = nullptr) {
  return PeelToSize(graph, beta, PeelStrategy::kMinDegree, nullptr, pool);
}

}  // namespace dcs

#endif  // DCS_GRAPH_CORE_DECOMPOSITION_H_
