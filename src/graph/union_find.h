#ifndef DCS_GRAPH_UNION_FIND_H_
#define DCS_GRAPH_UNION_FIND_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dcs {

/// Disjoint-set forest with union by size and path halving. Used for
/// connected-component queries on the induced correlation graphs.
class UnionFind {
 public:
  /// `n` singleton sets.
  explicit UnionFind(std::size_t n);

  /// Representative of x's set.
  std::uint32_t Find(std::uint32_t x);

  /// Merges the sets of a and b; returns true if they were distinct.
  bool Union(std::uint32_t a, std::uint32_t b);

  /// Size of x's set.
  std::size_t SetSize(std::uint32_t x);

  /// Number of disjoint sets remaining.
  std::size_t num_sets() const { return num_sets_; }

 private:
  std::vector<std::uint32_t> parent_;
  std::vector<std::uint32_t> size_;
  std::size_t num_sets_;
};

}  // namespace dcs

#endif  // DCS_GRAPH_UNION_FIND_H_
