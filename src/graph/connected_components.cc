#include "graph/connected_components.h"

#include <algorithm>

#include "graph/union_find.h"

namespace dcs {

ComponentStats ConnectedComponents(const Graph& graph) {
  const std::size_t n = graph.num_vertices();
  UnionFind uf(n);
  for (const auto& [u, v] : graph.edges()) uf.Union(u, v);

  ComponentStats stats;
  stats.component_of.assign(n, 0);
  std::vector<std::uint32_t> root_to_component(n, UINT32_MAX);
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint32_t root = uf.Find(static_cast<std::uint32_t>(v));
    if (root_to_component[root] == UINT32_MAX) {
      root_to_component[root] =
          static_cast<std::uint32_t>(stats.component_sizes.size());
      stats.component_sizes.push_back(0);
    }
    stats.component_of[v] = root_to_component[root];
    ++stats.component_sizes[stats.component_of[v]];
  }
  if (!stats.component_sizes.empty()) {
    stats.largest = *std::max_element(stats.component_sizes.begin(),
                                      stats.component_sizes.end());
  }
  return stats;
}

std::size_t LargestComponentSize(const Graph& graph) {
  return ConnectedComponents(graph).largest;
}

std::vector<Graph::VertexId> LargestComponentVertices(const Graph& graph) {
  const ComponentStats stats = ConnectedComponents(graph);
  std::vector<Graph::VertexId> result;
  if (stats.component_sizes.empty()) return result;
  const auto it = std::max_element(stats.component_sizes.begin(),
                                   stats.component_sizes.end());
  const auto target =
      static_cast<std::uint32_t>(it - stats.component_sizes.begin());
  for (std::size_t v = 0; v < stats.component_of.size(); ++v) {
    if (stats.component_of[v] == target) {
      result.push_back(static_cast<Graph::VertexId>(v));
    }
  }
  return result;
}

}  // namespace dcs
