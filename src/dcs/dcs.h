#ifndef DCS_DCS_DCS_H_
#define DCS_DCS_DCS_H_

/// \file
/// Umbrella header for libdcs — Distributed Collaborative Streaming
/// detection of common content in Internet traffic (Sung, Kumar, Li, Wang,
/// Xu; ICDE 2006).
///
/// Typical use:
///   1. at each router, run an AlignedCollector / UnalignedCollector over
///      every measurement epoch and ship the Digest;
///   2. at the analysis center, feed the epoch's digests to a DcsMonitor
///      and call AnalyzeAligned() / AnalyzeUnaligned().
/// See examples/quickstart.cc.

#include "dcs/epoch_ring.h"        // IWYU pragma: export
#include "dcs/epoch_tracker.h"     // IWYU pragma: export
#include "dcs/ingest.h"            // IWYU pragma: export
#include "dcs/monitor.h"           // IWYU pragma: export
#include "dcs/options.h"           // IWYU pragma: export
#include "dcs/report.h"            // IWYU pragma: export
#include "dcs/signature_filter.h"  // IWYU pragma: export
#include "net/packetizer.h" // IWYU pragma: export
#include "net/trace.h"      // IWYU pragma: export
#include "sketch/collector.h"  // IWYU pragma: export
#include "sketch/digest.h"     // IWYU pragma: export

#endif  // DCS_DCS_DCS_H_
