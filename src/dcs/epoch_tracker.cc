#include "dcs/epoch_tracker.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.h"
#include "obs/metrics.h"

namespace dcs {

EpochTracker::EpochTracker(const EpochTrackerOptions& options)
    : options_(options) {
  DCS_CHECK(options.window_epochs >= 1);
  DCS_CHECK(options.min_detections >= 1);
  DCS_CHECK(options.min_router_fraction > 0.0 &&
            options.min_router_fraction <= 1.0);
}

void EpochTracker::PushRecord(EpochRecord record) {
  const bool detected = record.detected;
  window_.push_back(std::move(record));
  if (window_.size() > options_.window_epochs) window_.pop_front();
  ++epochs_seen_;
  if (ObsEnabled()) {
    ObsCounter("epoch.tracked").Increment();
    if (detected) ObsCounter("epoch.detections").Increment();
    ObsGauge("epoch.detections_in_window")
        .Set(static_cast<double>(detections_in_window()));
    ObsGauge("epoch.gaps_in_window")
        .Set(static_cast<double>(gaps_in_window()));
    if (PersistentDetection()) {
      ObsCounter("epoch.persistent_alarms").Increment();
    }
  }
}

void EpochTracker::RecordEpoch(bool detected,
                               const std::vector<std::uint32_t>& routers) {
  EpochRecord record;
  record.detected = detected;
  if (detected) {
    record.routers = routers;
    std::sort(record.routers.begin(), record.routers.end());
    record.routers.erase(
        std::unique(record.routers.begin(), record.routers.end()),
        record.routers.end());
  }
  PushRecord(std::move(record));
}

void EpochTracker::RecordGap() {
  EpochRecord record;
  record.gap = true;
  ++gaps_seen_;
  if (ObsEnabled()) ObsCounter("epoch.gaps").Increment();
  PushRecord(std::move(record));
}

std::size_t EpochTracker::detections_in_window() const {
  std::size_t count = 0;
  for (const EpochRecord& record : window_) count += record.detected;
  return count;
}

std::size_t EpochTracker::gaps_in_window() const {
  std::size_t count = 0;
  for (const EpochRecord& record : window_) count += record.gap;
  return count;
}

bool EpochTracker::PersistentDetection() const {
  return detections_in_window() >= options_.min_detections;
}

std::vector<std::uint32_t> EpochTracker::StableRouters() const {
  const std::size_t detecting = detections_in_window();
  std::vector<std::uint32_t> stable;
  if (detecting == 0) return stable;
  std::map<std::uint32_t, std::size_t> counts;
  for (const EpochRecord& record : window_) {
    if (!record.detected) continue;
    for (std::uint32_t r : record.routers) ++counts[r];
  }
  const auto needed = static_cast<std::size_t>(std::ceil(
      options_.min_router_fraction * static_cast<double>(detecting)));
  for (const auto& [router, count] : counts) {
    if (count >= std::max<std::size_t>(needed, 1)) stable.push_back(router);
  }
  return stable;
}

}  // namespace dcs
