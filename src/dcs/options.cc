#include "dcs/options.h"

namespace dcs {

UnalignedPipelineOptions SmallUnalignedDefaults(std::size_t num_groups) {
  UnalignedPipelineOptions options;
  options.sketch.num_groups = num_groups;
  // Small deployments have proportionally fewer vertices, so the core can
  // be smaller while staying significant.
  options.detector.beta = 12;
  options.detector.expand_min_edges = 2;
  return options;
}

}  // namespace dcs
