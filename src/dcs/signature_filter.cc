#include "dcs/signature_filter.h"

#include "common/hash.h"
#include "common/logging.h"

namespace dcs {

SignatureFilter::SignatureFilter(
    const std::vector<std::size_t>& signature_columns,
    const BitmapSketchOptions& sketch_options)
    : options_(sketch_options),
      signature_bits_(sketch_options.num_bits),
      signature_size_(signature_columns.size()) {
  for (std::size_t c : signature_columns) {
    DCS_CHECK(c < options_.num_bits);
    signature_bits_.Set(c);
  }
}

bool SignatureFilter::Matches(const Packet& packet) const {
  if (packet.payload.size() < options_.min_payload_bytes) return false;
  const std::uint64_t index =
      Hash64(packet.PayloadPrefix(options_.prefix_len), options_.hash_seed) %
      options_.num_bits;
  return signature_bits_.Test(index);
}

double SignatureFilter::FalseMatchProbability() const {
  return static_cast<double>(signature_size_) /
         static_cast<double>(options_.num_bits);
}

}  // namespace dcs
