#include "dcs/report.h"

#include <sstream>

namespace dcs {

std::string EpochCalibration::ToString() const {
  std::ostringstream os;
  os << "EpochCalibration{routers=" << observed_routers;
  if (expected_routers > 0) os << "/" << expected_routers;
  if (degraded) os << " DEGRADED";
  os << ", aligned_min_nno_b=" << aligned_min_nno_columns
     << ", aligned_detectable_b=" << aligned_detectable_columns
     << ", unaligned_p1=" << unaligned_p1 << ", unaligned_d=" << unaligned_d
     << ", unaligned_min_cluster=" << unaligned_min_cluster << "}";
  return os.str();
}

namespace {

// Reports only mention calibration when a hardened monitor filled it in and
// only shout about it when the epoch is actually degraded, so the familiar
// one-line form (and the golden JSON pinned by tests) is unchanged for
// fully-reported epochs.
void AppendCalibrationJson(std::ostringstream* os,
                           const EpochCalibration& c) {
  *os << ",\"calibration\":{\"expected_routers\":" << c.expected_routers
      << ",\"observed_routers\":" << c.observed_routers
      << ",\"degraded\":" << (c.degraded ? "true" : "false")
      << ",\"aligned_min_nno_columns\":" << c.aligned_min_nno_columns
      << ",\"aligned_detectable_columns\":" << c.aligned_detectable_columns
      << ",\"unaligned_p1\":" << c.unaligned_p1
      << ",\"unaligned_d\":" << c.unaligned_d
      << ",\"unaligned_min_cluster\":" << c.unaligned_min_cluster << "}";
}

}  // namespace

std::string AlignedReport::ToString() const {
  std::ostringstream os;
  os << "AlignedReport{" << (common_content_detected ? "DETECTED" : "clear")
     << ", routers=" << routers.size()
     << ", signature_columns=" << signature_columns.size() << ", matrix="
     << matrix_rows << "x" << matrix_cols;
  if (calibration.degraded) os << ", " << calibration.ToString();
  os << "}";
  return os.str();
}

namespace {

void AppendUintArray(std::ostringstream* os,
                     const std::vector<std::uint32_t>& values) {
  *os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *os << ",";
    *os << values[i];
  }
  *os << "]";
}

}  // namespace

std::string AlignedReport::ToJson() const {
  std::ostringstream os;
  os << "{\"detected\":" << (common_content_detected ? "true" : "false")
     << ",\"matrix_rows\":" << matrix_rows
     << ",\"matrix_cols\":" << matrix_cols << ",\"routers\":";
  AppendUintArray(&os, routers);
  os << ",\"signature_columns\":[";
  for (std::size_t i = 0; i < signature_columns.size(); ++i) {
    if (i > 0) os << ",";
    os << signature_columns[i];
  }
  os << "]";
  if (calibration.populated()) AppendCalibrationJson(&os, calibration);
  os << "}";
  return os.str();
}

std::string UnalignedReport::ToJson() const {
  std::ostringstream os;
  os << "{\"detected\":" << (common_content_detected ? "true" : "false")
     << ",\"largest_component\":" << largest_component
     << ",\"er_threshold\":" << er_threshold
     << ",\"num_vertices\":" << num_vertices
     << ",\"num_edges\":" << num_edges << ",\"routers\":";
  AppendUintArray(&os, routers);
  os << ",\"clusters\":[";
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (c > 0) os << ",";
    os << "[";
    for (std::size_t i = 0; i < clusters[c].size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"router\":" << clusters[c][i].router_id
         << ",\"group\":" << clusters[c][i].group_index << "}";
    }
    os << "]";
  }
  os << "]";
  if (calibration.populated()) AppendCalibrationJson(&os, calibration);
  os << "}";
  return os.str();
}

std::string UnalignedReport::ToString() const {
  std::ostringstream os;
  os << "UnalignedReport{" << (common_content_detected ? "DETECTED" : "clear")
     << ", largest_cc=" << largest_component << " (threshold "
     << er_threshold << "), groups=" << groups.size()
     << ", routers=" << routers.size() << ", graph=" << num_vertices
     << "v/" << num_edges << "e";
  if (calibration.degraded) os << ", " << calibration.ToString();
  os << "}";
  return os.str();
}

}  // namespace dcs
