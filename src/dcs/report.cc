#include "dcs/report.h"

#include <sstream>

namespace dcs {

std::string AlignedReport::ToString() const {
  std::ostringstream os;
  os << "AlignedReport{" << (common_content_detected ? "DETECTED" : "clear")
     << ", routers=" << routers.size()
     << ", signature_columns=" << signature_columns.size() << ", matrix="
     << matrix_rows << "x" << matrix_cols << "}";
  return os.str();
}

namespace {

void AppendUintArray(std::ostringstream* os,
                     const std::vector<std::uint32_t>& values) {
  *os << "[";
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) *os << ",";
    *os << values[i];
  }
  *os << "]";
}

}  // namespace

std::string AlignedReport::ToJson() const {
  std::ostringstream os;
  os << "{\"detected\":" << (common_content_detected ? "true" : "false")
     << ",\"matrix_rows\":" << matrix_rows
     << ",\"matrix_cols\":" << matrix_cols << ",\"routers\":";
  AppendUintArray(&os, routers);
  os << ",\"signature_columns\":[";
  for (std::size_t i = 0; i < signature_columns.size(); ++i) {
    if (i > 0) os << ",";
    os << signature_columns[i];
  }
  os << "]}";
  return os.str();
}

std::string UnalignedReport::ToJson() const {
  std::ostringstream os;
  os << "{\"detected\":" << (common_content_detected ? "true" : "false")
     << ",\"largest_component\":" << largest_component
     << ",\"er_threshold\":" << er_threshold
     << ",\"num_vertices\":" << num_vertices
     << ",\"num_edges\":" << num_edges << ",\"routers\":";
  AppendUintArray(&os, routers);
  os << ",\"clusters\":[";
  for (std::size_t c = 0; c < clusters.size(); ++c) {
    if (c > 0) os << ",";
    os << "[";
    for (std::size_t i = 0; i < clusters[c].size(); ++i) {
      if (i > 0) os << ",";
      os << "{\"router\":" << clusters[c][i].router_id
         << ",\"group\":" << clusters[c][i].group_index << "}";
    }
    os << "]";
  }
  os << "]}";
  return os.str();
}

std::string UnalignedReport::ToString() const {
  std::ostringstream os;
  os << "UnalignedReport{" << (common_content_detected ? "DETECTED" : "clear")
     << ", largest_cc=" << largest_component << " (threshold "
     << er_threshold << "), groups=" << groups.size()
     << ", routers=" << routers.size() << ", graph=" << num_vertices
     << "v/" << num_edges << "e}";
  return os.str();
}

}  // namespace dcs
