#ifndef DCS_DCS_EPOCH_TRACKER_H_
#define DCS_DCS_EPOCH_TRACKER_H_

#include <cstdint>
#include <deque>
#include <vector>

namespace dcs {

/// Configuration of cross-epoch detection smoothing.
struct EpochTrackerOptions {
  /// Sliding window length, in epochs.
  std::size_t window_epochs = 5;
  /// Alarm after at least this many detecting epochs inside the window.
  std::size_t min_detections = 2;
  /// A router is reported as stable when it appears in at least this
  /// fraction of the window's detecting epochs.
  double min_router_fraction = 0.5;
};

/// \brief Aggregates per-epoch verdicts across time (Section V-B.1).
///
/// The paper runs detection every second and tolerates per-epoch false
/// negatives because a real pattern spans epochs: "even if the pattern is
/// missed in one second, it may be caught in the following seconds".
/// Requiring k-of-w epochs before alarming also collapses the residual
/// false positive rate (independent epoch FPs multiply). This tracker keeps
/// the sliding window and the per-router detection counts.
class EpochTracker {
 public:
  explicit EpochTracker(const EpochTrackerOptions& options);

  /// Records one epoch's verdict and (if detected) the implicated routers.
  void RecordEpoch(bool detected, const std::vector<std::uint32_t>& routers);

  /// Records an epoch that was never analyzed — shed under back-pressure
  /// (EpochRing drop-oldest) or lost upstream. The gap occupies a window
  /// slot exactly like a non-detecting epoch, so older detections age out
  /// of the k-of-w window at wall-epoch rate; silently *not* recording a
  /// missed epoch would leave stale detections in the window longer than
  /// window_epochs real epochs, making the alarm logic optimistic under
  /// load shedding. Gaps are separately countable (gaps_in_window) so
  /// operators can see how thin the window's evidence actually is.
  void RecordGap();

  /// True when the window holds at least min_detections detecting epochs.
  bool PersistentDetection() const;

  /// Number of detecting epochs currently in the window.
  std::size_t detections_in_window() const;

  /// Number of gap (skipped/shed) epochs currently in the window.
  std::size_t gaps_in_window() const;

  /// Routers implicated in at least min_router_fraction of the window's
  /// detecting epochs, ascending. Empty when nothing detected.
  std::vector<std::uint32_t> StableRouters() const;

  /// Total epochs ever recorded, gaps included.
  std::uint64_t epochs_seen() const { return epochs_seen_; }

  /// Total gap epochs ever recorded.
  std::uint64_t gaps_seen() const { return gaps_seen_; }

 private:
  struct EpochRecord {
    bool detected = false;
    bool gap = false;
    std::vector<std::uint32_t> routers;
  };

  void PushRecord(EpochRecord record);

  EpochTrackerOptions options_;
  std::deque<EpochRecord> window_;
  std::uint64_t epochs_seen_ = 0;
  std::uint64_t gaps_seen_ = 0;
};

}  // namespace dcs

#endif  // DCS_DCS_EPOCH_TRACKER_H_
