#include "dcs/monitor.h"

#include <algorithm>

#include "common/bit_matrix.h"
#include "common/logging.h"
#include "analysis/aligned_thresholds.h"
#include "analysis/cluster_separation.h"
#include "analysis/er_test.h"
#include "analysis/lambda_table.h"
#include "analysis/unaligned_thresholds.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {

DcsMonitor::DcsMonitor(const AlignedPipelineOptions& aligned_options,
                       const UnalignedPipelineOptions& unaligned_options)
    : DcsMonitor(aligned_options, unaligned_options, AnalysisContext{}) {}

DcsMonitor::DcsMonitor(const AlignedPipelineOptions& aligned_options,
                       const UnalignedPipelineOptions& unaligned_options,
                       const AnalysisContext& context)
    : DcsMonitor(aligned_options, unaligned_options, context,
                 IngestOptions{}) {}

DcsMonitor::DcsMonitor(const AlignedPipelineOptions& aligned_options,
                       const UnalignedPipelineOptions& unaligned_options,
                       const AnalysisContext& context,
                       const IngestOptions& ingest_options)
    : aligned_options_(aligned_options),
      unaligned_options_(unaligned_options),
      context_(context),
      ingest_options_(ingest_options) {
  stats_.expected_routers = ingest_options_.expected_routers;
  // The options only ever switch observability on: another component (or
  // the workbench --metrics flag) may have enabled the registry already.
  if (aligned_options.obs.enabled || unaligned_options.obs.enabled) {
    MetricsRegistry::Global().set_enabled(true);
  }
  // One pool serves both pipelines end to end: the aligned engine takes the
  // context directly, and the unaligned graph build (row weights, lambda
  // calibration, pair scan) inherits it here unless the caller already
  // picked one in the scan options. Peeling and the survivor scan get the
  // context at the DetectUnalignedPattern call sites.
  if (unaligned_options_.builder.scan.pool == nullptr) {
    unaligned_options_.builder.scan.pool = context_.pool;
  }
  if (context_.pool != nullptr) {
    ObsGauge("analysis.pool_threads")
        .Set(static_cast<double>(context_.pool->num_threads()));
  }
}

void DcsMonitor::set_ingest_options(const IngestOptions& options) {
  DCS_CHECK(aligned_.empty() && unaligned_.empty());
  ingest_options_ = options;
  stats_ = EpochIngestStats{};
  stats_.expected_routers = options.expected_routers;
}

void DcsMonitor::set_analysis_options(
    const AlignedPipelineOptions& aligned_options,
    const UnalignedPipelineOptions& unaligned_options) {
  aligned_options_ = aligned_options;
  unaligned_options_ = unaligned_options;
  // Same pool-inheritance rule as the constructor: one pool per analysis
  // center unless the scan options brought their own.
  if (unaligned_options_.builder.scan.pool == nullptr) {
    unaligned_options_.builder.scan.pool = context_.pool;
  }
}

Status DcsMonitor::Reject(std::uint64_t* counter, const char* metric,
                          std::uint32_t router_id, Status reason,
                          bool quarantine) {
  ++*counter;
  ObsCounter(metric).Increment();
  if (quarantine && ingest_options_.quarantine_rejected_routers &&
      router_id != kUnknownRouter && quarantined_.insert(router_id).second) {
    stats_.quarantine.push_back(QuarantineEntry{router_id, reason});
    ObsGauge("ingest.quarantined_routers")
        .Set(static_cast<double>(quarantined_.size()));
  }
  return reason;
}

Status DcsMonitor::AddDigest(const Digest& digest) {
  if (digest.rows.empty()) {
    return Reject(&stats_.rejected_empty, "ingest.rejected.empty",
                  digest.router_id,
                  Status::InvalidArgument("digest has no rows"),
                  /*quarantine=*/false);
  }
  // Internal consistency: the header's shape fields must agree with the rows
  // actually carried. The wire checksum cannot catch a resealed lying
  // header, and BuildUnalignedMatrix hard-asserts this invariant later, so a
  // forged digest must die here with a Status instead.
  const std::size_t claimed_rows =
      digest.kind == DigestKind::kAligned
          ? 1u
          : static_cast<std::size_t>(digest.num_groups) *
                digest.arrays_per_group;
  bool internally_consistent = digest.rows.size() == claimed_rows;
  if (digest.kind == DigestKind::kAligned) {
    internally_consistent = internally_consistent &&
                            digest.num_groups == 1 &&
                            digest.arrays_per_group == 1;
  }
  for (std::size_t r = 1; internally_consistent && r < digest.rows.size();
       ++r) {
    internally_consistent = digest.rows[r].size() == digest.rows[0].size();
  }
  if (!internally_consistent) {
    return Reject(&stats_.rejected_shape, "ingest.rejected.shape",
                  digest.router_id,
                  Status::Corruption(
                      "digest header shape disagrees with its own rows"),
                  /*quarantine=*/true);
  }
  if (IsQuarantined(digest.router_id)) {
    return Reject(&stats_.rejected_quarantined, "ingest.rejected.quarantined",
                  digest.router_id,
                  Status::FailedPrecondition("router is quarantined"),
                  /*quarantine=*/false);
  }
  const auto seen_key = std::make_pair(
      static_cast<std::uint32_t>(digest.kind), digest.router_id);
  if (seen_.count(seen_key) > 0) {
    return Reject(&stats_.rejected_duplicate, "ingest.rejected.duplicate",
                  digest.router_id,
                  Status::InvalidArgument(
                      "duplicate digest for this router and kind"),
                  /*quarantine=*/true);
  }
  // Epoch window: the reference is either configured or locked to the first
  // accepted digest (collectors here all start at epoch 0).
  const std::uint64_t reference = ingest_options_.lock_epoch_to_first
                                      ? reference_epoch_
                                      : ingest_options_.expected_epoch;
  const bool have_reference =
      !ingest_options_.lock_epoch_to_first || epoch_locked_;
  if (have_reference) {
    const std::uint64_t skew = digest.epoch_id > reference
                                   ? digest.epoch_id - reference
                                   : reference - digest.epoch_id;
    if (skew > ingest_options_.max_epoch_skew) {
      return Reject(&stats_.rejected_epoch_skew, "ingest.rejected.epoch_skew",
                    digest.router_id,
                    Status::FailedPrecondition(
                        digest.epoch_id > reference
                            ? "digest epoch_id is in the future"
                            : "digest epoch_id is stale"),
                    /*quarantine=*/true);
    }
  }
  std::vector<Digest>* bucket =
      digest.kind == DigestKind::kAligned ? &aligned_ : &unaligned_;
  if (!bucket->empty()) {
    const Digest& first = bucket->front();
    if (digest.rows.front().size() != first.rows.front().size() ||
        digest.num_groups != first.num_groups ||
        digest.arrays_per_group != first.arrays_per_group) {
      // Misconfiguration rather than forgery: never quarantines, so a
      // router can resend with the right shape.
      return Reject(&stats_.rejected_shape, "ingest.rejected.shape",
                    digest.router_id,
                    Status::InvalidArgument(
                        "digest shape disagrees with earlier digests of "
                        "this epoch"),
                    /*quarantine=*/false);
    }
  }
  if (!epoch_locked_) {
    epoch_locked_ = true;
    reference_epoch_ = digest.epoch_id;
  }
  seen_.insert(seen_key);
  observed_routers_.insert(digest.router_id);
  ++stats_.accepted;
  stats_.observed_routers =
      static_cast<std::uint32_t>(observed_routers_.size());
  ObsCounter("ingest.accepted").Increment();
  ObsGauge("ingest.missing_routers")
      .Set(static_cast<double>(stats_.missing_routers()));
  const std::size_t encoded_bytes = digest.EncodedSizeBytes();
  digest_bytes_ += encoded_bytes;
  raw_bytes_ += digest.raw_bytes_covered;
  ObsCounter(digest.kind == DigestKind::kAligned
                 ? "monitor.digests_received.aligned"
                 : "monitor.digests_received.unaligned")
      .Increment();
  ObsCounter("monitor.digest_bytes_received").Add(encoded_bytes);
  ObsCounter("monitor.raw_bytes_summarized").Add(digest.raw_bytes_covered);
  if (digest.kind == DigestKind::kAligned &&
      aligned_options_.incremental_weights) {
    // Fold the accepted row into the running column counts now, while the
    // digest is hot in cache. Rejected digests never reach this point, so a
    // quarantined or duplicate sender cannot perturb the counts.
    incremental_weights_.AddRow(digest.rows.front());
  }
  bucket->push_back(digest);
  return Status::Ok();
}

Status DcsMonitor::AddEncodedDigest(const std::vector<std::uint8_t>& bytes) {
  Digest digest;
  const Status decoded = Digest::Decode(bytes, &digest);
  if (!decoded.ok()) {
    // Never quarantines: the router id inside a corrupt message is
    // unauthenticated, so a third party must not be able to get an honest
    // router banned by spraying garbage in its name.
    ++stats_.rejected_decode;
    ObsCounter("ingest.rejected.decode").Increment();
    return decoded;
  }
  return AddDigest(digest);
}

EpochCalibration DcsMonitor::BaseCalibration(std::uint32_t observed) const {
  EpochCalibration c;
  c.expected_routers = ingest_options_.expected_routers;
  c.observed_routers = observed;
  c.degraded = c.expected_routers > 0 && observed < c.expected_routers;
  return c;
}

EpochCalibration DcsMonitor::AlignedCalibration() const {
  // One aligned digest per router (duplicates were rejected), so the matrix
  // height m' is exactly the digest count.
  EpochCalibration c =
      BaseCalibration(static_cast<std::uint32_t>(aligned_.size()));
  if (aligned_.size() < 2) return c;
  const auto m = static_cast<std::int64_t>(aligned_.size());
  const auto n =
      static_cast<std::int64_t>(aligned_.front().rows.front().size());
  // Full-height pattern (a = m'): Eq 1 gives the narrowest submatrix the
  // NNO gate will accept at this epoch's actual height.
  c.aligned_min_nno_columns = MinNonNaturallyOccurringB(
      m, n, m, aligned_options_.detector.nno_epsilon);
  DetectabilityOptions detect;
  detect.n_prime = std::min(
      static_cast<std::int64_t>(aligned_options_.n_prime), n);
  detect.epsilon = aligned_options_.detector.nno_epsilon;
  c.aligned_detectable_columns = DetectableThresholdB(
      m, n, m, ingest_options_.detect_target_prob,
      std::min(n, ingest_options_.max_detectable_columns), detect);
  return c;
}

EpochCalibration DcsMonitor::UnalignedCalibration() const {
  EpochCalibration c =
      BaseCalibration(static_cast<std::uint32_t>(unaligned_.size()));
  std::int64_t vertices = 0;
  for (const Digest& digest : unaligned_) vertices += digest.num_groups;
  if (vertices < 2) return c;
  // (p1, d) co-tuning (Eqs 2-3) against the vertex count the correlation
  // graph will actually have with m' routers reporting.
  UnalignedNnoOptions nno;
  nno.num_vertices = vertices;
  nno.p2 = ingest_options_.calibration_p2;
  nno.max_m = std::min(ingest_options_.calibration_max_m, vertices);
  const UnalignedNnoResult result = MinNonNaturallyOccurringClusterSize(nno);
  c.unaligned_min_cluster = result.min_cluster_size;
  c.unaligned_p1 = result.best_p1;
  c.unaligned_d = result.best_d;
  return c;
}

const std::vector<std::uint32_t>* DcsMonitor::AlignedHotWeights() const {
  // The running counts stand in for the weight pass only when they cover
  // exactly the rows being analyzed — if the flag was flipped mid-epoch (a
  // ring slot degraded after ingest started) the counts are stale and the
  // screen must run cold. Analysis stays correct either way.
  if (!aligned_options_.incremental_weights) return nullptr;
  if (incremental_weights_.num_rows() != aligned_.size()) return nullptr;
  return &incremental_weights_.weights();
}

std::vector<AlignedReport> DcsMonitor::AnalyzeAlignedAll(
    std::size_t max_patterns) const {
  std::vector<AlignedReport> reports;
  if (aligned_.size() < 2) return reports;
  const EpochCalibration calibration = AlignedCalibration();
  BitMatrix matrix;
  for (const Digest& digest : aligned_) {
    matrix.AppendRow(digest.rows.front());
  }
  AlignedDetector detector(aligned_options_.detector, context_);
  for (const AlignedDetection& detection : detector.DetectMultipleInMatrix(
           matrix, aligned_options_.n_prime, max_patterns,
           AlignedHotWeights())) {
    AlignedReport report;
    report.calibration = calibration;
    report.matrix_rows = matrix.rows();
    report.matrix_cols = matrix.cols();
    report.common_content_detected = true;
    for (std::uint32_t row : detection.rows) {
      report.routers.push_back(aligned_[row].router_id);
    }
    std::sort(report.routers.begin(), report.routers.end());
    report.signature_columns = detection.columns;
    reports.push_back(std::move(report));
  }
  return reports;
}

AlignedReport DcsMonitor::AnalyzeAligned() const {
  ScopedStageTimer epoch_timer("analyze_aligned");
  ObsCounter("monitor.epochs_analyzed.aligned").Increment();
  AlignedReport report;
  report.calibration = AlignedCalibration();
  if (report.calibration.degraded) {
    ObsCounter("ingest.degraded_epochs").Increment();
  }
  if (aligned_.size() < 2) return report;

  // Stack one row per router bitmap.
  BitMatrix matrix;
  {
    ScopedStageTimer timer("stack_matrix");
    for (const Digest& digest : aligned_) {
      matrix.AppendRow(digest.rows.front());
    }
  }
  report.matrix_rows = matrix.rows();
  report.matrix_cols = matrix.cols();

  AlignedDetector detector(aligned_options_.detector, context_);
  const AlignedDetection detection = detector.DetectInMatrix(
      matrix, aligned_options_.n_prime, AlignedHotWeights());
  report.common_content_detected = detection.pattern_found;
  if (detection.pattern_found) {
    report.routers.reserve(detection.rows.size());
    for (std::uint32_t row : detection.rows) {
      report.routers.push_back(aligned_[row].router_id);
    }
    std::sort(report.routers.begin(), report.routers.end());
    report.signature_columns = detection.columns;
  }
  return report;
}

void DcsMonitor::BuildUnalignedMatrix(
    BitMatrix* matrix, std::vector<GroupRef>* group_refs) const {
  // Merge digests vertically (Section IV-B): all rows, group-major, with a
  // global group id per (router, group).
  const std::size_t arrays = unaligned_.front().arrays_per_group;
  for (const Digest& digest : unaligned_) {
    DCS_CHECK(digest.rows.size() ==
              static_cast<std::size_t>(digest.num_groups) * arrays);
    for (std::uint32_t g = 0; g < digest.num_groups; ++g) {
      group_refs->push_back(GroupRef{digest.router_id, g});
    }
    for (const BitVector& row : digest.rows) {
      matrix->AppendRow(row);
    }
  }
}

std::vector<UnalignedReport> DcsMonitor::AnalyzeUnalignedAll(
    std::size_t max_patterns) const {
  std::vector<UnalignedReport> reports;
  const UnalignedReport epoch = AnalyzeUnaligned();
  if (!epoch.common_content_detected) return reports;

  BitMatrix matrix;
  std::vector<GroupRef> group_refs;
  BuildUnalignedMatrix(&matrix, &group_refs);
  const std::size_t n = group_refs.size();
  const std::size_t arrays = unaligned_.front().arrays_per_group;
  const double core_p1 =
      unaligned_options_.core_p1_times_n / static_cast<double>(n);
  LambdaTable lambda_core(matrix.cols(),
                          LambdaTable::PStarFromEdgeProb(core_p1, arrays));
  GraphBuilderOptions builder = unaligned_options_.builder;
  builder.arrays_per_group = arrays;
  const Graph core_graph =
      BuildCorrelationGraph(matrix, lambda_core, builder);

  MultiPatternOptions multi;
  multi.detector = unaligned_options_.detector;
  multi.max_patterns = max_patterns;
  multi.p_background = core_p1;
  for (const UnalignedDetection& detection :
       DetectMultipleUnalignedPatterns(core_graph, multi, context_)) {
    UnalignedReport report = epoch;  // Shared ER statistics.
    report.groups.clear();
    report.routers.clear();
    report.clusters.clear();
    report.num_edges = core_graph.num_edges();
    for (Graph::VertexId v : detection.detected) {
      report.groups.push_back(group_refs[v]);
      report.routers.push_back(group_refs[v].router_id);
    }
    std::sort(report.routers.begin(), report.routers.end());
    report.routers.erase(
        std::unique(report.routers.begin(), report.routers.end()),
        report.routers.end());
    reports.push_back(std::move(report));
  }
  return reports;
}

UnalignedReport DcsMonitor::AnalyzeUnaligned() const {
  ScopedStageTimer epoch_timer("analyze_unaligned");
  ObsCounter("monitor.epochs_analyzed.unaligned").Increment();
  UnalignedReport report;
  report.calibration = UnalignedCalibration();
  if (report.calibration.degraded) {
    ObsCounter("ingest.degraded_epochs").Increment();
  }
  if (unaligned_.empty()) return report;

  BitMatrix matrix;
  std::vector<GroupRef> group_refs;
  {
    ScopedStageTimer timer("stack_matrix");
    BuildUnalignedMatrix(&matrix, &group_refs);
  }
  const std::size_t arrays = unaligned_.front().arrays_per_group;
  const std::size_t n = group_refs.size();
  report.num_vertices = n;
  if (n < 2) return report;

  // ER test on the sparse graph (p1 below the 1/n phase transition).
  const double er_p1 =
      unaligned_options_.er_p1_times_n / static_cast<double>(n);
  GraphBuilderOptions builder = unaligned_options_.builder;
  {
    LambdaTable lambda(matrix.cols(),
                       LambdaTable::PStarFromEdgeProb(er_p1, arrays));
    builder.arrays_per_group = arrays;
    Graph er_graph(0);
    {
      ScopedStageTimer timer("er_graph");
      er_graph = BuildCorrelationGraph(matrix, lambda, builder);
    }
    const std::size_t threshold =
        unaligned_options_.er_threshold > 0
            ? unaligned_options_.er_threshold
            : DefaultErTestThreshold(n);
    ScopedStageTimer timer("er_test");
    const ErTestResult er = RunErTest(er_graph, threshold);
    report.largest_component = er.largest_component;
    report.er_threshold = threshold;
    report.common_content_detected = er.pattern_detected;
  }
  if (!report.common_content_detected) return report;

  // Core finding on the denser graph G' (lambda' from the larger p1).
  const double core_p1 =
      unaligned_options_.core_p1_times_n / static_cast<double>(n);
  LambdaTable lambda_core(matrix.cols(),
                          LambdaTable::PStarFromEdgeProb(core_p1, arrays));
  Graph core_graph(0);
  {
    ScopedStageTimer timer("core_graph");
    core_graph = BuildCorrelationGraph(matrix, lambda_core, builder);
  }
  report.num_edges = core_graph.num_edges();
  const UnalignedDetection detection =
      DetectUnalignedPattern(core_graph, unaligned_options_.detector,
                             context_);
  report.groups.reserve(detection.detected.size());
  for (Graph::VertexId v : detection.detected) {
    report.groups.push_back(group_refs[v]);
    report.routers.push_back(group_refs[v].router_id);
  }
  // Per-content breakdown of the detected set (Section II-D).
  ScopedStageTimer separation_timer("cluster_separation");
  for (const std::vector<Graph::VertexId>& cluster :
       SeparateClusters(core_graph, detection.detected,
                        unaligned_options_.separation)) {
    std::vector<GroupRef> refs;
    refs.reserve(cluster.size());
    for (Graph::VertexId v : cluster) refs.push_back(group_refs[v]);
    report.clusters.push_back(std::move(refs));
  }
  std::sort(report.routers.begin(), report.routers.end());
  report.routers.erase(
      std::unique(report.routers.begin(), report.routers.end()),
      report.routers.end());
  return report;
}

void DcsMonitor::ClearEpoch() {
  aligned_.clear();
  unaligned_.clear();
  incremental_weights_.Reset();
  digest_bytes_ = 0;
  raw_bytes_ = 0;
  stats_ = EpochIngestStats{};
  stats_.expected_routers = ingest_options_.expected_routers;
  quarantined_.clear();
  observed_routers_.clear();
  seen_.clear();
  epoch_locked_ = false;
  reference_epoch_ = 0;
}

}  // namespace dcs
