#include "dcs/monitor.h"

#include <algorithm>

#include "common/bit_matrix.h"
#include "common/logging.h"
#include "analysis/cluster_separation.h"
#include "analysis/er_test.h"
#include "analysis/lambda_table.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {

DcsMonitor::DcsMonitor(const AlignedPipelineOptions& aligned_options,
                       const UnalignedPipelineOptions& unaligned_options)
    : DcsMonitor(aligned_options, unaligned_options, AnalysisContext{}) {}

DcsMonitor::DcsMonitor(const AlignedPipelineOptions& aligned_options,
                       const UnalignedPipelineOptions& unaligned_options,
                       const AnalysisContext& context)
    : aligned_options_(aligned_options),
      unaligned_options_(unaligned_options),
      context_(context) {
  // The options only ever switch observability on: another component (or
  // the workbench --metrics flag) may have enabled the registry already.
  if (aligned_options.obs.enabled || unaligned_options.obs.enabled) {
    MetricsRegistry::Global().set_enabled(true);
  }
  // One pool serves both pipelines: the pair scan inherits it unless the
  // caller already picked one in the scan options.
  if (unaligned_options_.builder.scan.pool == nullptr) {
    unaligned_options_.builder.scan.pool = context_.pool;
  }
  if (context_.pool != nullptr) {
    ObsGauge("analysis.pool_threads")
        .Set(static_cast<double>(context_.pool->num_threads()));
  }
}

Status DcsMonitor::AddDigest(const Digest& digest) {
  if (digest.rows.empty()) {
    return Status::InvalidArgument("digest has no rows");
  }
  std::vector<Digest>* bucket =
      digest.kind == DigestKind::kAligned ? &aligned_ : &unaligned_;
  if (!bucket->empty()) {
    const Digest& first = bucket->front();
    if (digest.rows.front().size() != first.rows.front().size() ||
        digest.num_groups != first.num_groups ||
        digest.arrays_per_group != first.arrays_per_group) {
      return Status::InvalidArgument(
          "digest shape disagrees with earlier digests of this epoch");
    }
  }
  const std::size_t encoded_bytes = digest.EncodedSizeBytes();
  digest_bytes_ += encoded_bytes;
  raw_bytes_ += digest.raw_bytes_covered;
  ObsCounter(digest.kind == DigestKind::kAligned
                 ? "monitor.digests_received.aligned"
                 : "monitor.digests_received.unaligned")
      .Increment();
  ObsCounter("monitor.digest_bytes_received").Add(encoded_bytes);
  ObsCounter("monitor.raw_bytes_summarized").Add(digest.raw_bytes_covered);
  bucket->push_back(digest);
  return Status::Ok();
}

Status DcsMonitor::AddEncodedDigest(const std::vector<std::uint8_t>& bytes) {
  Digest digest;
  DCS_RETURN_IF_ERROR(Digest::Decode(bytes, &digest));
  return AddDigest(digest);
}

std::vector<AlignedReport> DcsMonitor::AnalyzeAlignedAll(
    std::size_t max_patterns) const {
  std::vector<AlignedReport> reports;
  if (aligned_.size() < 2) return reports;
  BitMatrix matrix;
  for (const Digest& digest : aligned_) {
    matrix.AppendRow(digest.rows.front());
  }
  AlignedDetector detector(aligned_options_.detector, context_);
  for (const AlignedDetection& detection : detector.DetectMultipleInMatrix(
           matrix, aligned_options_.n_prime, max_patterns)) {
    AlignedReport report;
    report.matrix_rows = matrix.rows();
    report.matrix_cols = matrix.cols();
    report.common_content_detected = true;
    for (std::uint32_t row : detection.rows) {
      report.routers.push_back(aligned_[row].router_id);
    }
    std::sort(report.routers.begin(), report.routers.end());
    report.signature_columns = detection.columns;
    reports.push_back(std::move(report));
  }
  return reports;
}

AlignedReport DcsMonitor::AnalyzeAligned() const {
  ScopedStageTimer epoch_timer("analyze_aligned");
  ObsCounter("monitor.epochs_analyzed.aligned").Increment();
  AlignedReport report;
  if (aligned_.size() < 2) return report;

  // Stack one row per router bitmap.
  BitMatrix matrix;
  {
    ScopedStageTimer timer("stack_matrix");
    for (const Digest& digest : aligned_) {
      matrix.AppendRow(digest.rows.front());
    }
  }
  report.matrix_rows = matrix.rows();
  report.matrix_cols = matrix.cols();

  AlignedDetector detector(aligned_options_.detector, context_);
  const AlignedDetection detection =
      detector.DetectInMatrix(matrix, aligned_options_.n_prime);
  report.common_content_detected = detection.pattern_found;
  if (detection.pattern_found) {
    report.routers.reserve(detection.rows.size());
    for (std::uint32_t row : detection.rows) {
      report.routers.push_back(aligned_[row].router_id);
    }
    std::sort(report.routers.begin(), report.routers.end());
    report.signature_columns = detection.columns;
  }
  return report;
}

void DcsMonitor::BuildUnalignedMatrix(
    BitMatrix* matrix, std::vector<GroupRef>* group_refs) const {
  // Merge digests vertically (Section IV-B): all rows, group-major, with a
  // global group id per (router, group).
  const std::size_t arrays = unaligned_.front().arrays_per_group;
  for (const Digest& digest : unaligned_) {
    DCS_CHECK(digest.rows.size() ==
              static_cast<std::size_t>(digest.num_groups) * arrays);
    for (std::uint32_t g = 0; g < digest.num_groups; ++g) {
      group_refs->push_back(GroupRef{digest.router_id, g});
    }
    for (const BitVector& row : digest.rows) {
      matrix->AppendRow(row);
    }
  }
}

std::vector<UnalignedReport> DcsMonitor::AnalyzeUnalignedAll(
    std::size_t max_patterns) const {
  std::vector<UnalignedReport> reports;
  const UnalignedReport epoch = AnalyzeUnaligned();
  if (!epoch.common_content_detected) return reports;

  BitMatrix matrix;
  std::vector<GroupRef> group_refs;
  BuildUnalignedMatrix(&matrix, &group_refs);
  const std::size_t n = group_refs.size();
  const std::size_t arrays = unaligned_.front().arrays_per_group;
  const double core_p1 =
      unaligned_options_.core_p1_times_n / static_cast<double>(n);
  LambdaTable lambda_core(matrix.cols(),
                          LambdaTable::PStarFromEdgeProb(core_p1, arrays));
  GraphBuilderOptions builder = unaligned_options_.builder;
  builder.arrays_per_group = arrays;
  const Graph core_graph =
      BuildCorrelationGraph(matrix, lambda_core, builder);

  MultiPatternOptions multi;
  multi.detector = unaligned_options_.detector;
  multi.max_patterns = max_patterns;
  multi.p_background = core_p1;
  for (const UnalignedDetection& detection :
       DetectMultipleUnalignedPatterns(core_graph, multi)) {
    UnalignedReport report = epoch;  // Shared ER statistics.
    report.groups.clear();
    report.routers.clear();
    report.clusters.clear();
    report.num_edges = core_graph.num_edges();
    for (Graph::VertexId v : detection.detected) {
      report.groups.push_back(group_refs[v]);
      report.routers.push_back(group_refs[v].router_id);
    }
    std::sort(report.routers.begin(), report.routers.end());
    report.routers.erase(
        std::unique(report.routers.begin(), report.routers.end()),
        report.routers.end());
    reports.push_back(std::move(report));
  }
  return reports;
}

UnalignedReport DcsMonitor::AnalyzeUnaligned() const {
  ScopedStageTimer epoch_timer("analyze_unaligned");
  ObsCounter("monitor.epochs_analyzed.unaligned").Increment();
  UnalignedReport report;
  if (unaligned_.empty()) return report;

  BitMatrix matrix;
  std::vector<GroupRef> group_refs;
  {
    ScopedStageTimer timer("stack_matrix");
    BuildUnalignedMatrix(&matrix, &group_refs);
  }
  const std::size_t arrays = unaligned_.front().arrays_per_group;
  const std::size_t n = group_refs.size();
  report.num_vertices = n;
  if (n < 2) return report;

  // ER test on the sparse graph (p1 below the 1/n phase transition).
  const double er_p1 =
      unaligned_options_.er_p1_times_n / static_cast<double>(n);
  GraphBuilderOptions builder = unaligned_options_.builder;
  {
    LambdaTable lambda(matrix.cols(),
                       LambdaTable::PStarFromEdgeProb(er_p1, arrays));
    builder.arrays_per_group = arrays;
    Graph er_graph(0);
    {
      ScopedStageTimer timer("er_graph");
      er_graph = BuildCorrelationGraph(matrix, lambda, builder);
    }
    const std::size_t threshold =
        unaligned_options_.er_threshold > 0
            ? unaligned_options_.er_threshold
            : DefaultErTestThreshold(n);
    ScopedStageTimer timer("er_test");
    const ErTestResult er = RunErTest(er_graph, threshold);
    report.largest_component = er.largest_component;
    report.er_threshold = threshold;
    report.common_content_detected = er.pattern_detected;
  }
  if (!report.common_content_detected) return report;

  // Core finding on the denser graph G' (lambda' from the larger p1).
  const double core_p1 =
      unaligned_options_.core_p1_times_n / static_cast<double>(n);
  LambdaTable lambda_core(matrix.cols(),
                          LambdaTable::PStarFromEdgeProb(core_p1, arrays));
  Graph core_graph(0);
  {
    ScopedStageTimer timer("core_graph");
    core_graph = BuildCorrelationGraph(matrix, lambda_core, builder);
  }
  report.num_edges = core_graph.num_edges();
  const UnalignedDetection detection =
      DetectUnalignedPattern(core_graph, unaligned_options_.detector);
  report.groups.reserve(detection.detected.size());
  for (Graph::VertexId v : detection.detected) {
    report.groups.push_back(group_refs[v]);
    report.routers.push_back(group_refs[v].router_id);
  }
  // Per-content breakdown of the detected set (Section II-D).
  ScopedStageTimer separation_timer("cluster_separation");
  for (const std::vector<Graph::VertexId>& cluster :
       SeparateClusters(core_graph, detection.detected,
                        unaligned_options_.separation)) {
    std::vector<GroupRef> refs;
    refs.reserve(cluster.size());
    for (Graph::VertexId v : cluster) refs.push_back(group_refs[v]);
    report.clusters.push_back(std::move(refs));
  }
  std::sort(report.routers.begin(), report.routers.end());
  report.routers.erase(
      std::unique(report.routers.begin(), report.routers.end()),
      report.routers.end());
  return report;
}

void DcsMonitor::ClearEpoch() {
  aligned_.clear();
  unaligned_.clear();
  digest_bytes_ = 0;
  raw_bytes_ = 0;
}

}  // namespace dcs
