#ifndef DCS_DCS_SIGNATURE_FILTER_H_
#define DCS_DCS_SIGNATURE_FILTER_H_

#include <cstddef>
#include <vector>

#include "common/bit_vector.h"
#include "net/packet.h"
#include "sketch/bitmap_sketch.h"

namespace dcs {

/// \brief Turns an aligned detection into a per-router packet filter.
///
/// The aligned pipeline's output includes the pattern's bitmap columns —
/// the hashed signature of the common content's packets (Section III-B:
/// "a 1 in the i-th row j-th column corresponds to the i-th router seeing a
/// packet that hashed to index j"). A router can re-apply the shared sketch
/// hash to live traffic and log/divert exactly the packets whose hash lands
/// in the signature — the paper's "external means such as packet logging"
/// made concrete. False-match probability for background packets is
/// |signature| / num_bits.
class SignatureFilter {
 public:
  /// Builds a filter from the report's signature columns. `sketch_options`
  /// must be the deployment's shared sketch configuration (same hash seed,
  /// width and prefix length).
  SignatureFilter(const std::vector<std::size_t>& signature_columns,
                  const BitmapSketchOptions& sketch_options);

  /// True when this packet hashes into the signature (and carries enough
  /// payload to have been sketched at all).
  bool Matches(const Packet& packet) const;

  /// Number of signature columns.
  std::size_t signature_size() const { return signature_size_; }

  /// Expected false-match probability for a random background packet.
  double FalseMatchProbability() const;

 private:
  BitmapSketchOptions options_;
  BitVector signature_bits_;
  std::size_t signature_size_;
};

}  // namespace dcs

#endif  // DCS_DCS_SIGNATURE_FILTER_H_
