#include "dcs/epoch_ring.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {

const char* ShedPolicyName(ShedPolicy policy) {
  switch (policy) {
    case ShedPolicy::kBlock:
      return "block";
    case ShedPolicy::kDropOldest:
      return "drop-oldest";
    case ShedPolicy::kDegrade:
      return "degrade";
  }
  return "unknown";
}

EpochRing::EpochRing(const EpochRingOptions& options)
    : EpochRing(options, AnalysisContext{}) {}

EpochRing::EpochRing(const EpochRingOptions& options,
                     const AnalysisContext& context)
    : options_(options),
      context_(context),
      slots_(options.capacity),
      tracker_(options.tracker) {
  DCS_CHECK(options_.capacity >= 1);
  DCS_CHECK(options_.analysis_budget_per_offer >= 1);
  DCS_CHECK(options_.degraded_n_prime_divisor >= 1);
  DCS_CHECK(options_.degraded_group_sample_rate > 0.0 &&
            options_.degraded_group_sample_rate <= 1.0);
}

std::size_t EpochRing::epochs_in_flight() const {
  std::size_t open = 0;
  for (const Slot& slot : slots_) open += slot.open;
  return open;
}

const DcsMonitor* EpochRing::monitor_for_epoch(std::uint64_t epoch) const {
  const Slot& slot = slots_[epoch % options_.capacity];
  if (slot.open && slot.epoch == epoch) return slot.monitor.get();
  return nullptr;
}

AlignedPipelineOptions EpochRing::DegradedAligned() const {
  AlignedPipelineOptions degraded = options_.aligned;
  // Narrow the screen: the dominant aligned cost is the k-product search
  // over n' columns. The NNO gate and EpochCalibration recompute against
  // the narrower screen, so the report is honest about its evidence bar.
  degraded.n_prime =
      std::max<std::size_t>(1, degraded.n_prime /
                                   options_.degraded_n_prime_divisor);
  degraded.detector.first_iteration_hopefuls = std::min(
      degraded.detector.first_iteration_hopefuls, degraded.n_prime);
  return degraded;
}

UnalignedPipelineOptions EpochRing::DegradedUnaligned() const {
  UnalignedPipelineOptions degraded = options_.unaligned;
  // Sample the pair scan: the dominant unaligned cost is the O(groups^2)
  // correlation pass (Section IV-D explicitly blesses sampling here).
  degraded.builder.scan.group_sample_rate =
      std::min(degraded.builder.scan.group_sample_rate,
               options_.degraded_group_sample_rate);
  return degraded;
}

EpochRing::Slot& EpochRing::OpenSlot(std::uint64_t epoch) {
  Slot& slot = slots_[epoch % options_.capacity];
  if (slot.open) {
    DCS_CHECK(slot.epoch == epoch)
        << "slot collision: epoch " << epoch << " maps onto open epoch "
        << slot.epoch;
    return slot;
  }
  // Pin the recycled monitor to exactly this epoch: the ring already routed
  // the digest by epoch id, so the slot must refuse anything else.
  IngestOptions pinned = options_.ingest;
  pinned.lock_epoch_to_first = false;
  pinned.expected_epoch = epoch;
  pinned.max_epoch_skew = 0;
  if (slot.monitor == nullptr) {
    slot.monitor = std::make_unique<DcsMonitor>(
        options_.aligned, options_.unaligned, context_, pinned);
  } else {
    slot.monitor->ClearEpoch();
    slot.monitor->set_ingest_options(pinned);
  }
  slot.epoch = epoch;
  slot.open = true;
  const std::size_t in_flight = epochs_in_flight();
  stats_.max_in_flight =
      std::max(stats_.max_in_flight,
               static_cast<std::uint64_t>(in_flight));
  ObsGauge("soak.epochs_in_flight").Set(static_cast<double>(in_flight));
  return slot;
}

void EpochRing::CloseHead(CloseMode mode) {
  ScopedStageTimer stage("ring_epoch");
  // Opening the slot even for an epoch that never saw a digest keeps the
  // report stream contiguous: silent epochs get an explicit empty verdict
  // instead of vanishing.
  Slot& slot = OpenSlot(head_);
  DcsMonitor& monitor = *slot.monitor;

  DcsReport report;
  report.epoch_id = head_;
  report.digests_accepted = monitor.ingest_stats().accepted;
  report.digests_rejected = monitor.ingest_stats().rejected_total();
  report.observed_routers = monitor.ingest_stats().observed_routers;

  switch (mode) {
    case CloseMode::kShed: {
      report.shed = true;
      ++stats_.epochs_shed;
      ObsCounter("soak.shed_epochs").Increment();
      // The epoch's evidence is lost; the k-of-w window must still age.
      tracker_.RecordGap();
      break;
    }
    case CloseMode::kDegraded: {
      report.degraded_analysis = true;
      ++stats_.epochs_degraded;
      ObsCounter("soak.degraded_epochs").Increment();
      monitor.set_analysis_options(DegradedAligned(), DegradedUnaligned());
      report.aligned = monitor.AnalyzeAligned();
      report.unaligned = monitor.AnalyzeUnaligned();
      monitor.set_analysis_options(options_.aligned, options_.unaligned);
      break;
    }
    case CloseMode::kAnalyze: {
      ++stats_.epochs_analyzed;
      ObsCounter("soak.analyzed_epochs").Increment();
      report.aligned = monitor.AnalyzeAligned();
      report.unaligned = monitor.AnalyzeUnaligned();
      break;
    }
  }

  if (mode != CloseMode::kShed) {
    const bool detected = report.aligned.common_content_detected ||
                          report.unaligned.common_content_detected;
    std::vector<std::uint32_t> routers = report.aligned.routers;
    routers.insert(routers.end(), report.unaligned.routers.begin(),
                   report.unaligned.routers.end());
    std::sort(routers.begin(), routers.end());
    routers.erase(std::unique(routers.begin(), routers.end()),
                  routers.end());
    tracker_.RecordEpoch(detected, routers);
  }

  {
    MutexLock lock(&reports_mu_);
    reports_.push_back(std::move(report));
  }
  monitor.ClearEpoch();
  slot.open = false;
  ++head_;
  ObsGauge("soak.head_epoch").Set(static_cast<double>(head_));
}

void EpochRing::AdvanceTo(std::uint64_t epoch) {
  std::size_t closed_this_offer = 0;
  while (epoch >= head_ + options_.capacity) {
    if (closed_this_offer < options_.analysis_budget_per_offer) {
      CloseHead(CloseMode::kAnalyze);
    } else {
      // Over budget: the stream is outrunning the analysis. The policy
      // decides what the overdue head costs us.
      switch (options_.policy) {
        case ShedPolicy::kBlock:
          ++stats_.blocked_advances;
          ObsCounter("soak.blocked_advances").Increment();
          CloseHead(CloseMode::kAnalyze);
          break;
        case ShedPolicy::kDropOldest:
          CloseHead(CloseMode::kShed);
          break;
        case ShedPolicy::kDegrade:
          CloseHead(CloseMode::kDegraded);
          break;
      }
    }
    ++closed_this_offer;
  }
}

Status EpochRing::Offer(const Digest& digest) {
  ++stats_.digests_offered;
  ObsCounter("soak.digests_offered").Increment();
  if (!started_) {
    started_ = true;
    head_ = digest.epoch_id;
  }
  if (digest.epoch_id < head_) {
    ++stats_.stale_digests;
    ObsCounter("soak.stale_digests").Increment();
    return Status::FailedPrecondition(
        "digest epoch is behind the ring head (epoch already closed)");
  }
  AdvanceTo(digest.epoch_id);
  Slot& slot = OpenSlot(digest.epoch_id);
  const Status status = slot.monitor->AddDigest(digest);
  if (status.ok()) {
    ++stats_.digests_accepted;
    ObsCounter("soak.digests_accepted").Increment();
  } else {
    ++stats_.digests_rejected;
    ObsCounter("soak.digests_rejected").Increment();
  }
  return status;
}

void EpochRing::Drain() {
  // End of stream: no back-pressure to shed against, so every remaining
  // epoch — including silent ones between open slots — closes at full
  // fidelity, keeping the report stream contiguous through the window.
  while (epochs_in_flight() > 0) {
    CloseHead(CloseMode::kAnalyze);
  }
}

std::vector<DcsReport> EpochRing::TakeReports() {
  std::vector<DcsReport> out;
  MutexLock lock(&reports_mu_);
  out.swap(reports_);
  return out;
}

}  // namespace dcs
