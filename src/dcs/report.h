#ifndef DCS_DCS_REPORT_H_
#define DCS_DCS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dcs {

/// \brief Detection thresholds recomputed for the routers that actually
/// reported (degraded-mode analysis, docs/ROBUSTNESS.md).
///
/// The paper's threshold analysis (Eq 1 for aligned, Eqs 2-3 for unaligned)
/// is parameterized by the matrix height m. When the collection network
/// drops or the monitor quarantines routers, the epoch is analyzed with
/// m' < m rows, and the natural-occurrence / detectability curves move. The
/// monitor recomputes them for the observed m' so every report states the
/// evidence bar it was actually held to.
struct EpochCalibration {
  /// Routers configured (IngestOptions::expected_routers; 0 = adaptive) and
  /// actually contributing to this analysis.
  std::uint32_t expected_routers = 0;
  std::uint32_t observed_routers = 0;
  /// True when observed < expected: thresholds below are for the smaller
  /// matrix.
  bool degraded = false;

  // Aligned pipeline, at m' = observed_routers rows.
  /// Smallest column count b whose m' x b all-1 submatrix passes the
  /// non-naturally-occurring gate (Eq 1); -1 when not computable.
  std::int64_t aligned_min_nno_columns = -1;
  /// Smallest pattern width detectable with the configured target
  /// probability after screening (Section V-A.2); -1 when none.
  std::int64_t aligned_detectable_columns = -1;

  // Unaligned pipeline, with n = observed groups vertices.
  /// Co-tuned null edge probability and edge-count threshold (Eqs 2-3).
  double unaligned_p1 = 0.0;
  std::int64_t unaligned_d = 0;
  /// Smallest non-naturally-occurring cluster size; -1 when none up to the
  /// configured search bound.
  std::int64_t unaligned_min_cluster = -1;

  /// True when any calibration was actually computed — reports only
  /// serialize the calibration when a hardened monitor filled it in, so
  /// pre-hardening report output (and its golden tests) is unchanged.
  [[nodiscard]] bool populated() const {
    return observed_routers > 0 || expected_routers > 0;
  }

  [[nodiscard]] std::string ToString() const;

  friend bool operator==(const EpochCalibration&,
                         const EpochCalibration&) = default;
};

/// Identity of one sketch group at the analysis center.
struct GroupRef {
  std::uint32_t router_id = 0;
  std::uint32_t group_index = 0;

  friend bool operator==(const GroupRef&, const GroupRef&) = default;
};

/// Analysis-center verdict for the aligned pipeline.
struct AlignedReport {
  /// Whether a non-naturally-occurring all-1 submatrix was found.
  bool common_content_detected = false;
  /// Routers whose bitmaps form the pattern rows.
  std::vector<std::uint32_t> routers;
  /// Bitmap indices (columns) of the pattern — the hashed signature of the
  /// common content's packets.
  std::vector<std::size_t> signature_columns;
  /// Matrix shape analyzed.
  std::size_t matrix_rows = 0;
  std::size_t matrix_cols = 0;
  /// Thresholds in force for this epoch (filled by hardened monitors;
  /// serialized only when populated()).
  EpochCalibration calibration;

  [[nodiscard]] std::string ToString() const;

  /// Machine-readable form for downstream alerting systems.
  [[nodiscard]] std::string ToJson() const;

  /// Field-wise equality — the differential soak suites compare whole
  /// reports across thread counts and ring configurations.
  friend bool operator==(const AlignedReport&, const AlignedReport&) = default;
};

/// Analysis-center verdict for the unaligned pipeline.
struct UnalignedReport {
  /// ER-test outcome: largest connected component vs threshold.
  std::size_t largest_component = 0;
  std::size_t er_threshold = 0;
  bool common_content_detected = false;
  /// Groups identified by core finding (only meaningful when detected).
  std::vector<GroupRef> groups;
  /// The detected groups split into per-content clusters (Section II-D);
  /// one cluster per distinct common content, largest first.
  std::vector<std::vector<GroupRef>> clusters;
  /// Distinct routers among those groups — who to contact for packet logs
  /// (the paper's "external means").
  std::vector<std::uint32_t> routers;
  /// Graph shape analyzed.
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  /// Thresholds in force for this epoch (filled by hardened monitors;
  /// serialized only when populated()).
  EpochCalibration calibration;

  [[nodiscard]] std::string ToString() const;

  /// Machine-readable form for downstream alerting systems.
  [[nodiscard]] std::string ToJson() const;

  /// Field-wise equality — the differential soak suites compare whole
  /// reports across thread counts and ring configurations.
  friend bool operator==(const UnalignedReport&,
                         const UnalignedReport&) = default;
};

}  // namespace dcs

#endif  // DCS_DCS_REPORT_H_
