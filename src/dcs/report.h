#ifndef DCS_DCS_REPORT_H_
#define DCS_DCS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dcs {

/// Identity of one sketch group at the analysis center.
struct GroupRef {
  std::uint32_t router_id = 0;
  std::uint32_t group_index = 0;

  friend bool operator==(const GroupRef&, const GroupRef&) = default;
};

/// Analysis-center verdict for the aligned pipeline.
struct AlignedReport {
  /// Whether a non-naturally-occurring all-1 submatrix was found.
  bool common_content_detected = false;
  /// Routers whose bitmaps form the pattern rows.
  std::vector<std::uint32_t> routers;
  /// Bitmap indices (columns) of the pattern — the hashed signature of the
  /// common content's packets.
  std::vector<std::size_t> signature_columns;
  /// Matrix shape analyzed.
  std::size_t matrix_rows = 0;
  std::size_t matrix_cols = 0;

  std::string ToString() const;

  /// Machine-readable form for downstream alerting systems.
  std::string ToJson() const;
};

/// Analysis-center verdict for the unaligned pipeline.
struct UnalignedReport {
  /// ER-test outcome: largest connected component vs threshold.
  std::size_t largest_component = 0;
  std::size_t er_threshold = 0;
  bool common_content_detected = false;
  /// Groups identified by core finding (only meaningful when detected).
  std::vector<GroupRef> groups;
  /// The detected groups split into per-content clusters (Section II-D);
  /// one cluster per distinct common content, largest first.
  std::vector<std::vector<GroupRef>> clusters;
  /// Distinct routers among those groups — who to contact for packet logs
  /// (the paper's "external means").
  std::vector<std::uint32_t> routers;
  /// Graph shape analyzed.
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;

  std::string ToString() const;

  /// Machine-readable form for downstream alerting systems.
  std::string ToJson() const;
};

}  // namespace dcs

#endif  // DCS_DCS_REPORT_H_
