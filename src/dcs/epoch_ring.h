#ifndef DCS_DCS_EPOCH_RING_H_
#define DCS_DCS_EPOCH_RING_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "common/sync.h"
#include "analysis/analysis_context.h"
#include "dcs/epoch_tracker.h"
#include "dcs/ingest.h"
#include "dcs/monitor.h"
#include "dcs/options.h"
#include "dcs/report.h"
#include "sketch/digest.h"

namespace dcs {

/// What the ring does with epochs it cannot afford to analyze in time
/// (docs/STREAMING.md has the full policy matrix).
enum class ShedPolicy {
  /// Analyze every epoch anyway, however far behind — models blocking the
  /// producer. Never loses evidence; latency is unbounded.
  kBlock,
  /// Shed overdue epochs unanalyzed; each becomes an EpochTracker gap.
  /// Bounded latency; loses the shed epochs' evidence and the k-of-w
  /// window ages at wall-epoch rate through the gaps.
  kDropOldest,
  /// Analyze overdue epochs with the cheaper degraded options; thresholds
  /// recalibrate via EpochCalibration so each report states the evidence
  /// bar it was held to. Bounded-ish latency; reduced sensitivity.
  kDegrade,
};

const char* ShedPolicyName(ShedPolicy policy);

/// Configuration of the continuous-operation ring.
struct EpochRingOptions {
  /// In-flight epochs the ring holds open at once (window [head, head+cap)).
  std::size_t capacity = 8;
  /// What to do with epochs forced out faster than the budget allows.
  ShedPolicy policy = ShedPolicy::kBlock;
  /// Head epochs the ring can afford to analyze at full fidelity during a
  /// single Offer() that advances the window. Advancing further than this
  /// in one step is the overload signal that triggers `policy` for the
  /// excess epochs. Drain() ignores the budget (end of stream, no
  /// pressure).
  std::size_t analysis_budget_per_offer = 1;

  /// Analysis tuning shared by every slot.
  AlignedPipelineOptions aligned;
  UnalignedPipelineOptions unaligned;
  /// Ingest hardening base. Epoch pinning (expected_epoch, skew 0, no
  /// lock-to-first) is applied per slot on top of this; routing digests to
  /// slots is the ring's job, so per-slot monitors never see skew.
  IngestOptions ingest;
  /// Cross-epoch k-of-w smoothing fed by every analyzed epoch and every
  /// shed gap.
  EpochTrackerOptions tracker;

  /// Degrade-mode tuning (kDegrade only): screen width divisor and the
  /// unaligned pair-scan sampling rate of the cheapened analysis.
  std::size_t degraded_n_prime_divisor = 4;
  double degraded_group_sample_rate = 0.25;
};

/// One epoch's complete outcome, in epoch order.
struct DcsReport {
  std::uint64_t epoch_id = 0;
  /// True when the epoch was shed unanalyzed (kDropOldest overload); the
  /// aligned/unaligned members are then default-constructed.
  bool shed = false;
  /// True when the epoch was analyzed with the degraded options.
  bool degraded_analysis = false;
  AlignedReport aligned;
  UnalignedReport unaligned;
  /// Ingest outcome summary for the epoch's slot.
  std::uint64_t digests_accepted = 0;
  std::uint64_t digests_rejected = 0;
  std::uint32_t observed_routers = 0;

  friend bool operator==(const DcsReport&, const DcsReport&) = default;
};

/// Ring lifetime counters (mirrored into soak.* metrics).
struct RingStats {
  std::uint64_t digests_offered = 0;
  std::uint64_t digests_accepted = 0;
  std::uint64_t digests_rejected = 0;  ///< Slot-level (shape, dup, ...).
  std::uint64_t stale_digests = 0;     ///< Behind the head — slot long gone.
  std::uint64_t epochs_analyzed = 0;   ///< Full-fidelity analyses.
  std::uint64_t epochs_shed = 0;       ///< kDropOldest gaps.
  std::uint64_t epochs_degraded = 0;   ///< kDegrade cheap analyses.
  std::uint64_t blocked_advances = 0;  ///< kBlock over-budget analyses.
  std::uint64_t max_in_flight = 0;     ///< High-water open slot count.
};

/// \brief Bounded window of in-flight epochs for sustained operation.
///
/// The paper's monitor runs every second, forever (Section V-B.1); one
/// DcsMonitor handles one epoch at a time. The ring owns `capacity` monitor
/// slots and recycles them: digests are routed to the slot of their epoch,
/// and when the stream moves past the window the head epoch is closed —
/// analyzed (or shed, per ShedPolicy), its DcsReport queued, its verdict
/// recorded in the EpochTracker, and its slot cleared for reuse. No
/// allocation of fresh pipeline state per epoch, bounded memory regardless
/// of stream length.
///
/// Determinism: closing an epoch runs the same DcsMonitor analysis a
/// one-shot monitor would run on the same accepted digests, on the same
/// AnalysisContext; with incremental weights on, the hot-started screen is
/// bit-identical to the cold one (see ScreenHeaviestColumns). So the
/// ring's reports are bit-identical to one-shot analysis at any thread
/// count — the property tests/test_epoch_ring.cc locks down.
///
/// Out-of-order tolerance: digests for any epoch inside [head, head+cap)
/// are accepted in any arrival order. A digest behind the head is refused
/// (FailedPrecondition, stats().stale_digests) — its epoch already closed.
///
/// Threading: the offer/close path (Offer, Drain, stats, tracker,
/// monitor_for_epoch) is confined to one thread — the slot monitors and
/// the tracker are not lock-protected, and serial offers are what make the
/// report stream deterministic. The one cross-thread surface is the closed
/// report queue: CloseHead() appends and TakeReports() drains under
/// `reports_mu_`, so an exporter thread may harvest reports while the
/// serve thread keeps offering.
class EpochRing {
 public:
  explicit EpochRing(const EpochRingOptions& options);
  EpochRing(const EpochRingOptions& options, const AnalysisContext& context);

  /// Routes one digest to its epoch's slot, advancing the window first if
  /// the digest's epoch lies beyond it (closing overdue heads per the shed
  /// policy). Returns the slot monitor's verdict; stale digests fail with
  /// FailedPrecondition without touching any slot.
  Status Offer(const Digest& digest);

  /// Closes every still-open epoch in order (full-fidelity analysis —
  /// end-of-stream, so the shed policy does not apply). Call before
  /// TakeReports() at shutdown.
  void Drain();

  /// Removes and returns the reports of every epoch closed so far, in
  /// epoch order. Safe from any thread (the queue is mutex-guarded); the
  /// rest of the ring is confined to the offering thread.
  std::vector<DcsReport> TakeReports() DCS_EXCLUDES(reports_mu_);

  /// Offer-thread only, like everything below: the counters are updated
  /// without atomics on the offer/close path.
  const RingStats& stats() const { return stats_; }
  const EpochTracker& tracker() const { return tracker_; }
  const EpochRingOptions& options() const { return options_; }

  /// Oldest epoch still open; meaningless before the first Offer().
  std::uint64_t head_epoch() const { return head_; }
  bool started() const { return started_; }
  /// Slots currently holding an open epoch.
  std::size_t epochs_in_flight() const;

  /// The live slot monitor of an open epoch, or nullptr when that epoch is
  /// not in flight. Test hook: lets the differential suite cross-check the
  /// slot's incremental weights against the BitMatrix oracle mid-stream.
  const DcsMonitor* monitor_for_epoch(std::uint64_t epoch) const;

 private:
  struct Slot {
    std::unique_ptr<DcsMonitor> monitor;
    std::uint64_t epoch = 0;
    bool open = false;
  };

  // Window advance: closes heads until `epoch` fits, charging the policy
  // for heads beyond the per-offer budget.
  void AdvanceTo(std::uint64_t epoch);
  // Closes the current head (analyze / shed / degrade), queues its report,
  // records tracker verdict, frees the slot, bumps head_.
  enum class CloseMode { kAnalyze, kShed, kDegraded };
  void CloseHead(CloseMode mode);
  // The slot for `epoch`, opened (recycled + ingest pinned) on demand.
  Slot& OpenSlot(std::uint64_t epoch);

  AlignedPipelineOptions DegradedAligned() const;
  UnalignedPipelineOptions DegradedUnaligned() const;

  EpochRingOptions options_;
  AnalysisContext context_;
  std::vector<Slot> slots_;
  EpochTracker tracker_;
  RingStats stats_;
  /// Guards only the closed-report queue — the handoff point between the
  /// offering thread (CloseHead appends) and whoever drains TakeReports().
  mutable Mutex reports_mu_{"EpochRing.reports_mu"};
  std::vector<DcsReport> reports_ DCS_GUARDED_BY(reports_mu_);
  std::uint64_t head_ = 0;
  bool started_ = false;
};

}  // namespace dcs

#endif  // DCS_DCS_EPOCH_RING_H_
