#include "dcs/ingest.h"

#include <sstream>

namespace dcs {

std::string EpochIngestStats::ToString() const {
  std::ostringstream os;
  os << "EpochIngestStats{accepted=" << accepted
     << ", rejected=" << rejected_total() << " (decode=" << rejected_decode
     << " empty=" << rejected_empty << " shape=" << rejected_shape
     << " duplicate=" << rejected_duplicate
     << " epoch_skew=" << rejected_epoch_skew
     << " quarantined=" << rejected_quarantined << ")";
  if (expected_routers > 0) {
    os << ", routers=" << observed_routers << "/" << expected_routers;
    if (degraded()) os << " DEGRADED(missing=" << missing_routers() << ")";
  } else {
    os << ", routers=" << observed_routers;
  }
  if (!quarantine.empty()) {
    os << ", quarantine=[";
    for (std::size_t i = 0; i < quarantine.size(); ++i) {
      if (i > 0) os << ", ";
      if (quarantine[i].router_id == kUnknownRouter) {
        os << "?";
      } else {
        os << quarantine[i].router_id;
      }
      os << ":" << quarantine[i].reason.ToString();
    }
    os << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace dcs
