#ifndef DCS_DCS_INGEST_H_
#define DCS_DCS_INGEST_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace dcs {

/// Router id recorded for messages whose origin could not be established
/// (e.g. a digest so mangled that even the header is unreadable).
inline constexpr std::uint32_t kUnknownRouter = 0xFFFFFFFFu;

/// \brief Epoch-ingestion hardening knobs (docs/ROBUSTNESS.md).
///
/// The digest checksum only proves the message survived transit intact — it
/// is not cryptographic, so a misbehaving or compromised router can ship a
/// well-formed digest that lies about its epoch or shape, replay an old one,
/// or simply go silent. These options tell the monitor what the collection
/// network is supposed to deliver so it can reject what disagrees and report
/// how degraded the epoch actually is.
struct IngestOptions {
  /// How many routers are supposed to report each epoch. 0 = adaptive (take
  /// whatever arrives; degraded-mode accounting is disabled).
  std::uint32_t expected_routers = 0;
  /// Largest |epoch_id - reference| accepted. 0 = the epoch ids of all
  /// accepted digests must match exactly.
  std::uint64_t max_epoch_skew = 0;
  /// When true the first accepted digest's epoch_id becomes the reference
  /// (collectors in this codebase all start at epoch 0, so existing setups
  /// keep working untouched). When false `expected_epoch` is the reference.
  bool lock_epoch_to_first = true;
  /// Reference epoch used when lock_epoch_to_first is false.
  std::uint64_t expected_epoch = 0;
  /// When true, a router whose message is rejected for a semantic offence
  /// (duplicate, epoch skew, internal shape lie) is quarantined: its already
  /// accepted digests stay, but every later message this epoch is refused
  /// with FailedPrecondition. Decode failures do *not* quarantine — the
  /// router id in a corrupt message is unauthenticated.
  bool quarantine_rejected_routers = true;

  // Degraded-mode calibration (EpochCalibration) knobs.

  /// Target detection probability for the recomputed aligned detectable
  /// threshold (Section V-A.2).
  double detect_target_prob = 0.95;
  /// Upper bound on the aligned detectable-threshold search, so per-epoch
  /// recalibration stays cheap even with multi-megabit bitmaps.
  std::int64_t max_detectable_columns = 4096;
  /// Pattern-pair edge probability p2 assumed by the unaligned (p1, d)
  /// co-tuning (Section IV-C).
  double calibration_p2 = 0.1;
  /// Upper bound on the unaligned cluster-size search.
  std::int64_t calibration_max_m = 4096;
};

/// One quarantined (or unattributable) sender and why.
struct QuarantineEntry {
  std::uint32_t router_id = kUnknownRouter;
  Status reason;
};

/// \brief What happened to every message offered to the monitor this epoch.
///
/// Mirrored into the metrics registry under ingest.* (docs/OBSERVABILITY.md)
/// so long-running deployments can alert on rejection spikes.
struct EpochIngestStats {
  std::uint64_t accepted = 0;
  std::uint64_t rejected_decode = 0;      ///< Checksum / parse failures.
  std::uint64_t rejected_empty = 0;       ///< No rows.
  std::uint64_t rejected_shape = 0;       ///< Internal or cross-digest shape.
  std::uint64_t rejected_duplicate = 0;   ///< Same (kind, router) replayed.
  std::uint64_t rejected_epoch_skew = 0;  ///< epoch_id outside the window.
  std::uint64_t rejected_quarantined = 0; ///< Sender already quarantined.

  /// Copied from IngestOptions for self-contained reporting.
  std::uint32_t expected_routers = 0;
  /// Distinct routers with at least one accepted digest.
  std::uint32_t observed_routers = 0;

  /// Who is quarantined and why, in quarantine order.
  std::vector<QuarantineEntry> quarantine;

  std::uint64_t rejected_total() const {
    return rejected_decode + rejected_empty + rejected_shape +
           rejected_duplicate + rejected_epoch_skew + rejected_quarantined;
  }

  /// expected - observed when expectations are configured, else 0.
  std::uint32_t missing_routers() const {
    return expected_routers > observed_routers
               ? expected_routers - observed_routers
               : 0;
  }

  /// True when fewer routers reported than expected — the analysis still
  /// runs, but against the recalibrated thresholds in EpochCalibration.
  bool degraded() const { return missing_routers() > 0; }

  /// One line for logs: acceptance, rejection breakdown, quarantine list.
  std::string ToString() const;
};

}  // namespace dcs

#endif  // DCS_DCS_INGEST_H_
