#ifndef DCS_DCS_MONITOR_H_
#define DCS_DCS_MONITOR_H_

#include <set>
#include <utility>
#include <vector>

#include "common/bit_matrix.h"
#include "common/status.h"
#include "analysis/analysis_context.h"
#include "analysis/incremental_weights.h"
#include "dcs/ingest.h"
#include "dcs/options.h"
#include "dcs/report.h"
#include "sketch/digest.h"

namespace dcs {

/// \brief The central analysis module of the DCS architecture (Fig 2).
///
/// Routers ship Digests; the monitor stacks them into the per-epoch analysis
/// matrix and runs the appropriate detection pipeline:
///  * aligned: screen the heaviest n' columns, greedy k-product core search,
///    core scan across the remaining columns (Section III);
///  * unaligned: induce the group correlation graph through the lambda
///    table, run the Erdős–Rényi phase-transition test, then find the core
///    and expand it (Section IV).
///
/// One monitor instance handles one epoch at a time: add the epoch's
/// digests, Analyze*, then ClearEpoch().
class DcsMonitor {
 public:
  DcsMonitor(const AlignedPipelineOptions& aligned_options,
             const UnalignedPipelineOptions& unaligned_options);

  /// Same, with shared analysis resources. The context's pool drives the
  /// whole aligned pipeline and, when the unaligned scan options carry no
  /// pool of their own, the pair scan too — one pool per analysis center
  /// (Section IV-D). Must outlive the monitor. Detection output does not
  /// depend on the pool or its thread count.
  DcsMonitor(const AlignedPipelineOptions& aligned_options,
             const UnalignedPipelineOptions& unaligned_options,
             const AnalysisContext& context);

  /// Same, with hardened-ingestion configuration (docs/ROBUSTNESS.md).
  DcsMonitor(const AlignedPipelineOptions& aligned_options,
             const UnalignedPipelineOptions& unaligned_options,
             const AnalysisContext& context,
             const IngestOptions& ingest_options);

  /// Reconfigures ingestion. Must be called before the epoch's first
  /// digest (or right after ClearEpoch()).
  void set_ingest_options(const IngestOptions& options);
  const IngestOptions& ingest_options() const { return ingest_options_; }

  /// Swaps the analysis tuning mid-life — the EpochRing's degrade shedding
  /// policy analyzes an overloaded epoch with cheaper options, then
  /// restores. Ingested digests are untouched; the pool-inheritance rule of
  /// the constructor is re-applied. Thresholds (EpochCalibration) are
  /// recomputed from the new options at the next Analyze*() call, so a
  /// degraded analysis states the evidence bar it was actually held to.
  void set_analysis_options(const AlignedPipelineOptions& aligned_options,
                            const UnalignedPipelineOptions& unaligned_options);
  const AlignedPipelineOptions& aligned_options() const {
    return aligned_options_;
  }
  const UnalignedPipelineOptions& unaligned_options() const {
    return unaligned_options_;
  }

  /// Accepts one router's digest for the current epoch. Rejects, in order:
  /// digests with no rows (InvalidArgument); digests whose header shape
  /// fields disagree with their own rows (Corruption — a resealed lying
  /// header); messages from quarantined routers (FailedPrecondition);
  /// replays of a (kind, router) already accepted this epoch
  /// (InvalidArgument); epoch ids outside the configured skew window
  /// (FailedPrecondition); and digests whose shape disagrees with
  /// previously added ones (InvalidArgument). Semantic offences quarantine
  /// the sender when IngestOptions says so.
  Status AddDigest(const Digest& digest);

  /// Decodes an encoded digest (the wire form routers ship) and adds it.
  /// Decode failures are counted in ingest_stats() but never quarantine:
  /// the router id inside a corrupt message is unauthenticated.
  Status AddEncodedDigest(const std::vector<std::uint8_t>& bytes);

  /// What happened to every message offered this epoch.
  const EpochIngestStats& ingest_stats() const { return stats_; }

  /// True when `router_id` has been quarantined this epoch.
  bool IsQuarantined(std::uint32_t router_id) const {
    return quarantined_.count(router_id) > 0;
  }

  /// Thresholds recomputed for the routers that actually reported — what
  /// Analyze*() stamps into report.calibration. Callable directly for
  /// operator dashboards.
  EpochCalibration AlignedCalibration() const;
  EpochCalibration UnalignedCalibration() const;

  /// Runs the aligned pipeline over all aligned digests received.
  AlignedReport AnalyzeAligned() const;

  /// Iterated aligned analysis for several common contents in one epoch
  /// (Section II-D): one report per detected pattern, strongest first.
  std::vector<AlignedReport> AnalyzeAlignedAll(
      std::size_t max_patterns) const;

  /// Runs the unaligned pipeline over all unaligned digests received.
  UnalignedReport AnalyzeUnaligned() const;

  /// Iterated unaligned analysis (Section II-D): detects up to max_patterns
  /// distinct contents by detect-erase-repeat on the core graph, each gated
  /// by the Eq-2 union bound. Returns one report per content, strongest
  /// first; the ER test still gates the whole epoch (empty result when it
  /// does not fire).
  std::vector<UnalignedReport> AnalyzeUnalignedAll(
      std::size_t max_patterns) const;

  /// Drops all buffered digests.
  void ClearEpoch();

  /// Digests buffered so far.
  std::size_t num_aligned_digests() const { return aligned_.size(); }
  std::size_t num_unaligned_digests() const { return unaligned_.size(); }

  /// Total encoded digest bytes received this epoch and the raw traffic
  /// bytes they summarize (for the >=1000x reduction accounting).
  std::uint64_t digest_bytes_received() const { return digest_bytes_; }
  std::uint64_t raw_bytes_summarized() const { return raw_bytes_; }

  /// Running per-column 1-counts over the aligned digests accepted so far
  /// (maintained only when AlignedPipelineOptions::incremental_weights is
  /// on). Exposed so the differential suite can cross-check the counts
  /// against the BitMatrix::ColumnWeights oracle every epoch.
  const IncrementalColumnWeights& incremental_column_weights() const {
    return incremental_weights_;
  }

 private:
  // Stacks the unaligned digests group-major and fills the (router, group)
  // identity of every graph vertex.
  void BuildUnalignedMatrix(BitMatrix* matrix,
                            std::vector<GroupRef>* group_refs) const;

  // Rejection bookkeeping: counts *counter, mirrors it into the ingest.*
  // metrics, optionally quarantines the sender, and returns `reason`.
  Status Reject(std::uint64_t* counter, const char* metric,
                std::uint32_t router_id, Status reason, bool quarantine);

  // Fills the shared (router accounting) part of an EpochCalibration.
  EpochCalibration BaseCalibration(std::uint32_t observed) const;

  // The running column counts when they exactly cover the buffered aligned
  // rows, else nullptr (cold screen).
  const std::vector<std::uint32_t>* AlignedHotWeights() const;

  AlignedPipelineOptions aligned_options_;
  UnalignedPipelineOptions unaligned_options_;
  AnalysisContext context_;
  IngestOptions ingest_options_;
  std::vector<Digest> aligned_;
  std::vector<Digest> unaligned_;
  IncrementalColumnWeights incremental_weights_;
  std::uint64_t digest_bytes_ = 0;
  std::uint64_t raw_bytes_ = 0;

  // Hardened-ingestion state, reset by ClearEpoch().
  EpochIngestStats stats_;
  std::set<std::uint32_t> quarantined_;
  std::set<std::uint32_t> observed_routers_;
  std::set<std::pair<std::uint32_t, std::uint32_t>> seen_;  // (kind, router)
  bool epoch_locked_ = false;
  std::uint64_t reference_epoch_ = 0;
};

}  // namespace dcs

#endif  // DCS_DCS_MONITOR_H_
