#ifndef DCS_DCS_OPTIONS_H_
#define DCS_DCS_OPTIONS_H_

#include <cstddef>

#include "analysis/aligned_detector.h"
#include "analysis/cluster_separation.h"
#include "analysis/unaligned_detector.h"
#include "analysis/unaligned_graph_builder.h"
#include "obs/metrics.h"
#include "sketch/bitmap_sketch.h"
#include "sketch/flow_split_sketch.h"

namespace dcs {

/// End-to-end configuration of the aligned DCS pipeline (Section III).
struct AlignedPipelineOptions {
  /// Per-router streaming module.
  BitmapSketchOptions sketch;
  /// Screen width n' at the analysis center (Theorem 2; 4,000 for the
  /// paper's 4 Mbit bitmaps).
  std::size_t n_prime = 4000;
  /// Greedy ASID search tuning.
  AlignedDetectorOptions detector;
  /// Maintain per-column weight counts incrementally as digests arrive, so
  /// the weight screen starts hot instead of rescanning the whole matrix at
  /// analysis time (docs/STREAMING.md). Bit-identical to the cold path;
  /// costs one AccumulateColumnCounts pass per accepted digest.
  bool incremental_weights = false;
  /// Metrics/stage-timer switches (docs/OBSERVABILITY.md).
  ObservabilityOptions obs;
};

/// End-to-end configuration of the unaligned DCS pipeline (Section IV).
struct UnalignedPipelineOptions {
  /// Per-router streaming module (flow splitting + offset sampling).
  FlowSplitOptions sketch;
  /// Null edge probability of the ER-test graph, as a multiple of the phase
  /// transition 1/n (n = total groups). The paper uses p1 = 0.65e-5 at
  /// n = 102,400, i.e. 0.665/n.
  double er_p1_times_n = 0.665;
  /// Null edge probability of the core-finding graph, as a multiple of 1/n.
  /// The paper uses 0.8e-4 at n = 102,400, i.e. 8.2/n — far above the phase
  /// transition, as Section IV-B prescribes for the denser graph G'.
  double core_p1_times_n = 8.2;
  /// Largest-component threshold for the ER test; 0 = automatic (~8.7 ln n,
  /// which reproduces the paper's 100 at n = 102,400).
  std::size_t er_threshold = 0;
  /// Core finding / expansion tuning.
  UnalignedDetectorOptions detector;
  /// Per-content cluster separation of the detected set (Section II-D).
  ClusterSeparationOptions separation;
  /// Correlation scan tuning (parallelism, vertex sampling).
  GraphBuilderOptions builder;
  /// Metrics/stage-timer switches (docs/OBSERVABILITY.md).
  ObservabilityOptions obs;
};

/// Returns defaults scaled for a small deployment (used by the examples and
/// tests): r routers, g groups per router, keeping every ratio of the
/// paper's configuration.
UnalignedPipelineOptions SmallUnalignedDefaults(std::size_t num_groups);

}  // namespace dcs

#endif  // DCS_DCS_OPTIONS_H_
