#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.h"

namespace dcs {

double LatencyHistogram::Mean() const {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::size_t LatencyHistogram::BucketIndex(std::uint64_t value) {
  if (value == 0) return 0;
  // Values >= 2^62 (top bucket would be 63 or 64) clamp into the last
  // bucket, which therefore covers [2^62, 2^64).
  return std::min<std::size_t>(
      static_cast<std::size_t>(64 - std::countl_zero(value)), kNumBuckets - 1);
}

std::uint64_t LatencyHistogram::BucketLowerBound(std::size_t b) {
  if (b == 0) return 0;
  return std::uint64_t{1} << (b - 1);
}

std::uint64_t LatencyHistogram::BucketUpperBound(std::size_t b) {
  if (b == 0) return 1;
  return std::uint64_t{1} << b;
}

std::uint64_t LatencyHistogram::QuantileUpperBound(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the q-quantile among the recorded samples, 1-based.
  const auto rank = static_cast<std::uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kNumBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= rank) return BucketUpperBound(b) - 1;
  }
  return BucketUpperBound(kNumBuckets - 1) - 1;
}

void LatencyHistogram::ResetValue() {
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

const MetricsSnapshot::Entry* MetricsSnapshot::Find(
    std::string_view name) const {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const Entry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    Slot slot;
    slot.type = MetricType::kCounter;
    slot.counter = std::unique_ptr<Counter>(new Counter(&enabled_));
    it = slots_.emplace(std::string(name), std::move(slot)).first;
  }
  DCS_CHECK(it->second.type == MetricType::kCounter);
  return *it->second.counter;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    Slot slot;
    slot.type = MetricType::kGauge;
    slot.gauge = std::unique_ptr<Gauge>(new Gauge(&enabled_));
    it = slots_.emplace(std::string(name), std::move(slot)).first;
  }
  DCS_CHECK(it->second.type == MetricType::kGauge);
  return *it->second.gauge;
}

LatencyHistogram& MetricsRegistry::GetHistogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto it = slots_.find(name);
  if (it == slots_.end()) {
    Slot slot;
    slot.type = MetricType::kHistogram;
    slot.histogram =
        std::unique_ptr<LatencyHistogram>(new LatencyHistogram(&enabled_));
    it = slots_.emplace(std::string(name), std::move(slot)).first;
  }
  DCS_CHECK(it->second.type == MetricType::kHistogram);
  return *it->second.histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(&mu_);
  snapshot.entries.reserve(slots_.size());
  for (const auto& [name, slot] : slots_) {  // std::map: already sorted.
    MetricsSnapshot::Entry entry;
    entry.name = name;
    entry.type = slot.type;
    switch (slot.type) {
      case MetricType::kCounter:
        entry.counter_value = slot.counter->value();
        break;
      case MetricType::kGauge:
        entry.gauge_value = slot.gauge->value();
        break;
      case MetricType::kHistogram: {
        const LatencyHistogram& h = *slot.histogram;
        entry.hist_count = h.count();
        entry.hist_sum = h.sum();
        for (std::size_t b = 0; b < LatencyHistogram::kNumBuckets; ++b) {
          const std::uint64_t c = h.bucket_count(b);
          if (c > 0) {
            entry.hist_buckets.emplace_back(
                LatencyHistogram::BucketLowerBound(b), c);
          }
        }
        break;
      }
    }
    snapshot.entries.push_back(std::move(entry));
  }
  return snapshot;
}

void MetricsRegistry::ResetValues() {
  MutexLock lock(&mu_);
  for (auto& [name, slot] : slots_) {
    switch (slot.type) {
      case MetricType::kCounter:
        slot.counter->ResetValue();
        break;
      case MetricType::kGauge:
        slot.gauge->ResetValue();
        break;
      case MetricType::kHistogram:
        slot.histogram->ResetValue();
        break;
    }
  }
}

std::size_t MetricsRegistry::num_metrics() const {
  MutexLock lock(&mu_);
  return slots_.size();
}

Counter& ObsCounter(std::string_view name) {
  return MetricsRegistry::Global().GetCounter(name);
}

Gauge& ObsGauge(std::string_view name) {
  return MetricsRegistry::Global().GetGauge(name);
}

LatencyHistogram& ObsHistogram(std::string_view name) {
  return MetricsRegistry::Global().GetHistogram(name);
}

}  // namespace dcs
