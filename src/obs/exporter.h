#ifndef DCS_OBS_EXPORTER_H_
#define DCS_OBS_EXPORTER_H_

#include <ostream>
#include <string>

#include "common/status.h"
#include "obs/metrics.h"

namespace dcs {

/// \brief Serializes a snapshot as JSON lines — one self-contained JSON
/// object per metric per line, so epoch snapshots can be appended to one
/// file and grepped/jq'd without a streaming parser.
///
/// Formats (field order fixed; see docs/OBSERVABILITY.md):
///   {"epoch":3,"name":"...","type":"counter","value":12}
///   {"epoch":3,"name":"...","type":"gauge","value":0.5132}
///   {"epoch":3,"name":"...","type":"histogram","count":8,"sum":91,
///    "p50":15,"p99":31,"buckets":[[8,5],[16,3]]}
/// Histogram buckets are (lower bound, count) pairs for every non-empty
/// log2 bucket; p50/p99 are bucket upper bounds.
std::string SnapshotToJsonLines(const MetricsSnapshot& snapshot);

/// Parses text produced by SnapshotToJsonLines back into a snapshot
/// (exporter round-trip; also lets tools re-read their own dumps). Lines
/// must carry a uniform "epoch". Unknown fields are ignored.
Status ParseJsonLines(const std::string& text, MetricsSnapshot* out);

/// Renders the snapshot as a human TablePrinter summary: histograms get
/// count/mean/p50/p99 columns with nanosecond metrics scaled to a readable
/// unit.
void PrintSnapshotTable(const MetricsSnapshot& snapshot, std::ostream& os);

/// "1.23 ms"-style rendering for nanosecond quantities.
std::string FormatNanos(double nanos);

}  // namespace dcs

#endif  // DCS_OBS_EXPORTER_H_
