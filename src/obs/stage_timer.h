#ifndef DCS_OBS_STAGE_TIMER_H_
#define DCS_OBS_STAGE_TIMER_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>

#include "obs/metrics.h"

namespace dcs {

/// \brief RAII span that attributes wall time to a named pipeline stage.
///
/// On destruction the elapsed nanoseconds are recorded into the global
/// registry histogram "stage.<path>.ns", where <path> is the '/'-joined
/// chain of the spans alive on this thread — nesting
///   ScopedStageTimer outer("analyze_unaligned");
///   ScopedStageTimer inner("er_graph");
/// records under "stage.analyze_unaligned.ns" and
/// "stage.analyze_unaligned/er_graph.ns", so an epoch snapshot reads as a
/// flame graph.
///
/// When the registry is disabled at construction the span does nothing —
/// no clock read, no string work — so timers can wrap hot stages
/// unconditionally. Thread-safe: the path stack is thread-local, the
/// histograms are shared.
class ScopedStageTimer {
 public:
  explicit ScopedStageTimer(std::string_view stage);
  ~ScopedStageTimer();

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

  /// This thread's current '/'-joined span path ("" outside any span).
  static std::string_view CurrentPath();

 private:
  bool active_ = false;
  std::size_t path_len_before_ = 0;
  std::chrono::steady_clock::time_point start_;
};

/// \brief Manual stopwatch for stages that are not lexically scoped
/// (e.g. timing each thread-pool task of the pair scan).
///
/// Start() reads the clock only when the registry is enabled;
/// ElapsedNanos() returns 0 when Start() was skipped, so
/// `hist->Record(watch.ElapsedNanos())` stays a no-op in disabled mode.
class StageStopwatch {
 public:
  void Start() {
    if (!ObsEnabled()) return;
    running_ = true;
    start_ = std::chrono::steady_clock::now();
  }

  std::uint64_t ElapsedNanos() const {
    if (!running_) return 0;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - start_)
            .count());
  }

 private:
  bool running_ = false;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace dcs

#endif  // DCS_OBS_STAGE_TIMER_H_
