#include "obs/stage_timer.h"

namespace dcs {
namespace {

// One '/'-joined path per thread; spans push on construction and truncate
// back on destruction. A plain string keeps the common case (two or three
// levels) allocation-free after the first epoch.
thread_local std::string tls_stage_path;

}  // namespace

ScopedStageTimer::ScopedStageTimer(std::string_view stage) {
  if (!ObsEnabled()) return;
  active_ = true;
  path_len_before_ = tls_stage_path.size();
  if (!tls_stage_path.empty()) tls_stage_path += '/';
  tls_stage_path += stage;
  start_ = std::chrono::steady_clock::now();
}

ScopedStageTimer::~ScopedStageTimer() {
  if (!active_) return;
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  const auto nanos = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  std::string name;
  name.reserve(tls_stage_path.size() + 9);
  name += "stage.";
  name += tls_stage_path;
  name += ".ns";
  ObsHistogram(name).Record(nanos);
  tls_stage_path.resize(path_len_before_);
}

std::string_view ScopedStageTimer::CurrentPath() { return tls_stage_path; }

}  // namespace dcs
