#ifndef DCS_OBS_METRICS_H_
#define DCS_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"

namespace dcs {

class MetricsRegistry;

/// What a registry entry measures. Exporters key their JSON/table layout off
/// this tag.
enum class MetricType {
  kCounter,    ///< Monotonic within a run (until ResetValues).
  kGauge,      ///< Last-write-wins sample of a level (fill ratio, core size).
  kHistogram,  ///< Log2-bucketed distribution of non-negative values.
};

/// \brief Monotonic event counter.
///
/// Updates are a single relaxed atomic add; when the owning registry is
/// disabled they are no-ops, so instrumentation can stay in release builds.
/// References returned by the registry are stable for the registry's
/// lifetime — cache them (e.g. in a function-local static) at hot sites.
class Counter {
 public:
  void Add(std::uint64_t n) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Counter(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void ResetValue() { value_.store(0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> value_{0};
};

/// \brief Last-write-wins level sample (fill ratio, cache hit rate, ...).
class Gauge {
 public:
  void Set(double v) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    value_.store(v, std::memory_order_relaxed);
  }

  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  explicit Gauge(const std::atomic<bool>* enabled) : enabled_(enabled) {}
  void ResetValue() { value_.store(0.0, std::memory_order_relaxed); }

  const std::atomic<bool>* enabled_;
  std::atomic<double> value_{0.0};
};

/// \brief Fixed-bucket histogram of non-negative integer samples.
///
/// Bucket b covers [2^(b-1), 2^b) with bucket 0 reserved for the value 0, so
/// boundaries are known at compile time and recording is one relaxed atomic
/// add — no allocation, no lock, safe from any thread. Stage timers record
/// nanoseconds here; detectors record per-iteration counts. Quantiles are
/// resolved to a bucket upper bound (within 2x of the true value), which is
/// plenty for "where did my epoch go" attribution.
class LatencyHistogram {
 public:
  /// The last bucket absorbs everything >= 2^62 (~146 years in ns), so any
  /// uint64 value has a bucket.
  static constexpr std::size_t kNumBuckets = 64;

  void Record(std::uint64_t value) {
    if (!enabled_->load(std::memory_order_relaxed)) return;
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;

  std::uint64_t bucket_count(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Bucket that `value` lands in: 0 for 0, else 1 + floor(log2(value)).
  static std::size_t BucketIndex(std::uint64_t value);
  /// Smallest value of bucket b (inclusive).
  static std::uint64_t BucketLowerBound(std::size_t b);
  /// One past the largest value of bucket b.
  static std::uint64_t BucketUpperBound(std::size_t b);

  /// Upper bound of the bucket holding the q-quantile (q in (0, 1]);
  /// 0 when empty.
  std::uint64_t QuantileUpperBound(double q) const;

 private:
  friend class MetricsRegistry;
  explicit LatencyHistogram(const std::atomic<bool>* enabled)
      : enabled_(enabled) {}
  void ResetValue();

  const std::atomic<bool>* enabled_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::array<std::atomic<std::uint64_t>, kNumBuckets> buckets_{};
};

/// Point-in-time copy of every registered metric, sorted by name. The
/// exporter (obs/exporter.h) turns this into JSON lines or a table.
struct MetricsSnapshot {
  struct Entry {
    std::string name;
    MetricType type = MetricType::kCounter;
    std::uint64_t counter_value = 0;
    double gauge_value = 0.0;
    std::uint64_t hist_count = 0;
    std::uint64_t hist_sum = 0;
    /// (bucket lower bound, count) for every non-empty bucket, ascending.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> hist_buckets;
  };
  /// Which measurement epoch the snapshot describes (caller-assigned).
  std::uint64_t epoch_id = 0;
  std::vector<Entry> entries;

  /// Entry by exact name; nullptr when absent.
  const Entry* Find(std::string_view name) const;
};

/// \brief Process-wide registry of named counters/gauges/histograms.
///
/// Get* interns the name on first use and returns a stable reference whose
/// updates are lock-free; the registry mutex is only taken on registration
/// and snapshot. Everything is a no-op while disabled (the default), so the
/// pipeline's instrumentation costs one relaxed load per update site until
/// someone turns observability on (ObservabilityOptions, workbench
/// --metrics, or set_enabled directly).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The registry the pipeline instrumentation reports to.
  static MetricsRegistry& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }

  /// Interns `name` (first call registers, later calls return the same
  /// object). A name may only ever be used with one metric type.
  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  LatencyHistogram& GetHistogram(std::string_view name);

  /// Copies every registered metric, sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Zeroes every value but keeps registrations (epoch boundaries).
  void ResetValues();

  std::size_t num_metrics() const;

 private:
  struct Slot {
    MetricType type;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };

  /// Deliberately lock-free: every hot-path update (Counter::Add,
  /// Gauge::Set, LatencyHistogram::Record) is a relaxed atomic against
  /// values owned by the slots below, so mu_ guards the *map*, never the
  /// metric values — annotating the values DCS_GUARDED_BY(mu_) would be
  /// wrong, not just noisy. The enable flag is part of that lock-free
  /// surface (each metric keeps a pointer to it).
  std::atomic<bool> enabled_{false};
  mutable Mutex mu_{"MetricsRegistry.mu"};
  /// Interned name -> slot. Values are unique_ptrs precisely so the
  /// references Get* hands out stay stable while the map rebalances under
  /// later registrations.
  std::map<std::string, Slot, std::less<>> slots_ DCS_GUARDED_BY(mu_);
};

/// Shorthands on the global registry. At hot sites cache the result:
///   static Counter& pairs = ObsCounter("pairscan.pairs_visited");
Counter& ObsCounter(std::string_view name);
Gauge& ObsGauge(std::string_view name);
LatencyHistogram& ObsHistogram(std::string_view name);

/// Whether the global registry currently records anything. Guards
/// instrumentation whose *preparation* is non-trivial (e.g. an O(bits) fill
/// count at epoch end).
inline bool ObsEnabled() { return MetricsRegistry::Global().enabled(); }

/// Observability switches carried by the pipeline options (dcs/options.h).
struct ObservabilityOptions {
  /// Turns the global registry on when a DcsMonitor is constructed with
  /// these options. Never turns it off (another component may have
  /// enabled it).
  bool enabled = false;
};

}  // namespace dcs

#endif  // DCS_OBS_METRICS_H_
