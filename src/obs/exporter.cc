#include "obs/exporter.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "common/table_printer.h"

namespace dcs {
namespace {

void AppendEscaped(std::string* out, std::string_view s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out->push_back('\\');
    out->push_back(c);
  }
}

void AppendU64(std::string* out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

// Upper bound (inclusive) of the log2 bucket whose lower bound is `lower`.
std::uint64_t BucketInclusiveUpper(std::uint64_t lower) {
  return lower == 0 ? 0 : 2 * lower - 1;
}

// q-quantile upper bound from a snapshot entry's non-empty buckets.
std::uint64_t EntryQuantile(const MetricsSnapshot::Entry& e, double q) {
  if (e.hist_count == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(e.hist_count) + 0.9999999);
  std::uint64_t seen = 0;
  for (const auto& [lower, count] : e.hist_buckets) {
    seen += count;
    if (seen >= rank) return BucketInclusiveUpper(lower);
  }
  return e.hist_buckets.empty()
             ? 0
             : BucketInclusiveUpper(e.hist_buckets.back().first);
}

// --- Minimal parsing helpers for the exporter's own output format. ---

// Position just past `"key":`, or npos.
std::size_t AfterKey(std::string_view line, std::string_view key) {
  std::string pattern;
  pattern.reserve(key.size() + 3);
  pattern += '"';
  pattern += key;
  pattern += "\":";
  const std::size_t pos = line.find(pattern);
  return pos == std::string_view::npos ? std::string_view::npos
                                       : pos + pattern.size();
}

bool ParseU64At(std::string_view line, std::size_t pos, std::uint64_t* v) {
  if (pos == std::string_view::npos || pos >= line.size()) return false;
  char* end = nullptr;
  *v = std::strtoull(line.data() + pos, &end, 10);
  return end != line.data() + pos;
}

bool ParseDoubleAt(std::string_view line, std::size_t pos, double* v) {
  if (pos == std::string_view::npos || pos >= line.size()) return false;
  char* end = nullptr;
  *v = std::strtod(line.data() + pos, &end);
  return end != line.data() + pos;
}

bool ParseStringAt(std::string_view line, std::size_t pos, std::string* v) {
  if (pos == std::string_view::npos || pos >= line.size() ||
      line[pos] != '"') {
    return false;
  }
  v->clear();
  for (std::size_t i = pos + 1; i < line.size(); ++i) {
    if (line[i] == '\\' && i + 1 < line.size()) {
      v->push_back(line[++i]);
    } else if (line[i] == '"') {
      return true;
    } else {
      v->push_back(line[i]);
    }
  }
  return false;  // Unterminated.
}

}  // namespace

std::string SnapshotToJsonLines(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    out += "{\"epoch\":";
    AppendU64(&out, snapshot.epoch_id);
    out += ",\"name\":\"";
    AppendEscaped(&out, e.name);
    out += "\",\"type\":\"";
    switch (e.type) {
      case MetricType::kCounter:
        out += "counter\",\"value\":";
        AppendU64(&out, e.counter_value);
        break;
      case MetricType::kGauge:
        out += "gauge\",\"value\":";
        AppendDouble(&out, e.gauge_value);
        break;
      case MetricType::kHistogram:
        out += "histogram\",\"count\":";
        AppendU64(&out, e.hist_count);
        out += ",\"sum\":";
        AppendU64(&out, e.hist_sum);
        out += ",\"p50\":";
        AppendU64(&out, EntryQuantile(e, 0.50));
        out += ",\"p99\":";
        AppendU64(&out, EntryQuantile(e, 0.99));
        out += ",\"buckets\":[";
        for (std::size_t i = 0; i < e.hist_buckets.size(); ++i) {
          if (i > 0) out += ',';
          out += '[';
          AppendU64(&out, e.hist_buckets[i].first);
          out += ',';
          AppendU64(&out, e.hist_buckets[i].second);
          out += ']';
        }
        out += ']';
        break;
    }
    out += "}\n";
  }
  return out;
}

Status ParseJsonLines(const std::string& text, MetricsSnapshot* out) {
  *out = MetricsSnapshot{};
  bool epoch_set = false;
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string_view line(text.data() + start, end - start);
    start = end + 1;
    if (line.empty()) continue;

    MetricsSnapshot::Entry entry;
    std::uint64_t epoch = 0;
    std::string type;
    if (!ParseU64At(line, AfterKey(line, "epoch"), &epoch) ||
        !ParseStringAt(line, AfterKey(line, "name"), &entry.name) ||
        !ParseStringAt(line, AfterKey(line, "type"), &type)) {
      return Status::Corruption("metrics line missing epoch/name/type: " +
                                std::string(line));
    }
    if (epoch_set && epoch != out->epoch_id) {
      return Status::Corruption("mixed epochs in metrics snapshot");
    }
    out->epoch_id = epoch;
    epoch_set = true;

    if (type == "counter") {
      entry.type = MetricType::kCounter;
      if (!ParseU64At(line, AfterKey(line, "value"), &entry.counter_value)) {
        return Status::Corruption("counter line missing value");
      }
    } else if (type == "gauge") {
      entry.type = MetricType::kGauge;
      if (!ParseDoubleAt(line, AfterKey(line, "value"), &entry.gauge_value)) {
        return Status::Corruption("gauge line missing value");
      }
    } else if (type == "histogram") {
      entry.type = MetricType::kHistogram;
      if (!ParseU64At(line, AfterKey(line, "count"), &entry.hist_count) ||
          !ParseU64At(line, AfterKey(line, "sum"), &entry.hist_sum)) {
        return Status::Corruption("histogram line missing count/sum");
      }
      std::size_t pos = AfterKey(line, "buckets");
      if (pos == std::string_view::npos || pos >= line.size() ||
          line[pos] != '[') {
        return Status::Corruption("histogram line missing buckets");
      }
      ++pos;  // Past the outer '['.
      while (pos < line.size() && line[pos] != ']') {
        if (line[pos] == ',' || line[pos] == '[') {
          ++pos;
          continue;
        }
        char* after = nullptr;
        const std::uint64_t lower =
            std::strtoull(line.data() + pos, &after, 10);
        if (after == line.data() + pos || *after != ',') {
          return Status::Corruption("bad histogram bucket");
        }
        pos = static_cast<std::size_t>(after - line.data()) + 1;
        const std::uint64_t count =
            std::strtoull(line.data() + pos, &after, 10);
        if (after == line.data() + pos || *after != ']') {
          return Status::Corruption("bad histogram bucket");
        }
        pos = static_cast<std::size_t>(after - line.data()) + 1;
        entry.hist_buckets.emplace_back(lower, count);
      }
    } else {
      return Status::Corruption("unknown metric type: " + type);
    }
    out->entries.push_back(std::move(entry));
  }
  return Status::Ok();
}

std::string FormatNanos(double nanos) {
  char buf[40];
  if (nanos >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2f s", nanos / 1e9);
  } else if (nanos >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", nanos / 1e6);
  } else if (nanos >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f us", nanos / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f ns", nanos);
  }
  return buf;
}

void PrintSnapshotTable(const MetricsSnapshot& snapshot, std::ostream& os) {
  TablePrinter table({"metric", "type", "value", "count", "p50", "p99"});
  for (const MetricsSnapshot::Entry& e : snapshot.entries) {
    switch (e.type) {
      case MetricType::kCounter:
        table.AddRow({e.name, "counter", std::to_string(e.counter_value),
                      "", "", ""});
        break;
      case MetricType::kGauge:
        table.AddRow({e.name, "gauge", TablePrinter::Fmt(e.gauge_value, 4),
                      "", "", ""});
        break;
      case MetricType::kHistogram: {
        // Nanosecond histograms (stage timers) print human units; count
        // histograms print raw numbers.
        const bool is_nanos =
            e.name.size() > 3 && e.name.rfind(".ns") == e.name.size() - 3;
        const double mean =
            e.hist_count == 0
                ? 0.0
                : static_cast<double>(e.hist_sum) /
                      static_cast<double>(e.hist_count);
        const std::uint64_t p50 = EntryQuantile(e, 0.50);
        const std::uint64_t p99 = EntryQuantile(e, 0.99);
        table.AddRow(
            {e.name, "histogram",
             is_nanos ? FormatNanos(mean) : TablePrinter::Fmt(mean, 1),
             std::to_string(e.hist_count),
             is_nanos ? FormatNanos(static_cast<double>(p50))
                      : std::to_string(p50),
             is_nanos ? FormatNanos(static_cast<double>(p99))
                      : std::to_string(p99)});
        break;
      }
    }
  }
  table.Print(os);
}

}  // namespace dcs
