#include "net/packet.h"

#include "common/hash.h"

namespace dcs {

std::uint64_t HashFlowLabel(const FlowLabel& flow, std::uint64_t seed) {
  std::uint64_t packed_ips =
      (static_cast<std::uint64_t>(flow.src_ip) << 32) | flow.dst_ip;
  std::uint64_t packed_rest =
      (static_cast<std::uint64_t>(flow.src_port) << 24) |
      (static_cast<std::uint64_t>(flow.dst_port) << 8) | flow.protocol;
  return HashCombine(Mix64(packed_ips ^ seed), Mix64(packed_rest + seed));
}

}  // namespace dcs
