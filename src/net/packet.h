#ifndef DCS_NET_PACKET_H_
#define DCS_NET_PACKET_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace dcs {

/// \brief Transport-layer flow identity (the paper's "flow label").
///
/// The unaligned-case sketch splits traffic into groups by hashing this
/// 5-tuple so that all packets of one content instance land in the same group
/// (Fig 9); a flow is one transmission instance of an object.
struct FlowLabel {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 6;  // TCP by default.

  friend bool operator==(const FlowLabel&, const FlowLabel&) = default;
};

/// Seeded 64-bit hash of the flow 5-tuple.
std::uint64_t HashFlowLabel(const FlowLabel& flow, std::uint64_t seed);

/// \brief One captured packet: flow identity plus application-layer payload.
///
/// Network/transport headers are modelled only by their byte count so traces
/// can account for raw traffic volume; the streaming modules operate on the
/// payload (the paper strips headers before hashing, Fig 3).
struct Packet {
  FlowLabel flow;
  std::uint32_t header_bytes = 40;  // IPv4 + TCP without options.
  std::string payload;

  /// Total on-the-wire size in bytes.
  std::size_t wire_bytes() const { return header_bytes + payload.size(); }

  /// First `len` payload bytes (clamped), the paper's
  /// range(pkt.content, 0, len).
  std::string_view PayloadPrefix(std::size_t len) const {
    return std::string_view(payload).substr(0, len);
  }

  /// `len` payload bytes starting at `offset`; empty if offset is past the
  /// end, clamped at the payload end otherwise. Used by offset sampling
  /// (Fig 8).
  std::string_view PayloadRange(std::size_t offset, std::size_t len) const {
    std::string_view view(payload);
    if (offset >= view.size()) return std::string_view();
    return view.substr(offset, len);
  }
};

}  // namespace dcs

#endif  // DCS_NET_PACKET_H_
