#ifndef DCS_NET_TRACE_H_
#define DCS_NET_TRACE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "net/packet.h"

namespace dcs {

/// \brief In-memory packet trace for one monitored link.
///
/// Stand-in for the pcap-style header traces the paper collected from a
/// tier-1 ISP; provides epoch segmentation (the paper cuts its 150M-packet
/// trace into one-second-equivalent segments) and a compact binary file
/// format so synthesized workloads can be reused across runs.
class PacketTrace {
 public:
  PacketTrace() = default;

  /// Appends one packet.
  void Add(Packet packet) { packets_.push_back(std::move(packet)); }

  /// Number of packets.
  std::size_t size() const { return packets_.size(); }
  bool empty() const { return packets_.empty(); }

  const Packet& operator[](std::size_t i) const { return packets_[i]; }

  std::vector<Packet>::const_iterator begin() const {
    return packets_.begin();
  }
  std::vector<Packet>::const_iterator end() const { return packets_.end(); }

  /// Total on-the-wire bytes across all packets.
  std::size_t TotalWireBytes() const;

  /// Splits the trace into consecutive segments of `packets_per_epoch`
  /// packets (the last may be short). Views index into this trace; the trace
  /// must outlive them.
  struct EpochView {
    const Packet* data = nullptr;
    std::size_t count = 0;

    const Packet* begin() const { return data; }
    const Packet* end() const { return data + count; }
    std::size_t size() const { return count; }
  };
  std::vector<EpochView> SplitIntoEpochs(std::size_t packets_per_epoch) const;

  /// Writes the trace to `path` (binary, versioned, checksummed).
  Status WriteToFile(const std::string& path) const;

  /// Reads a trace previously written by WriteToFile.
  static Status ReadFromFile(const std::string& path, PacketTrace* out);

 private:
  std::vector<Packet> packets_;
};

}  // namespace dcs

#endif  // DCS_NET_TRACE_H_
