#include "net/trace.h"

#include <cstdint>
#include <cstdio>
#include <memory>

#include "common/hash.h"
#include "common/logging.h"

namespace dcs {
namespace {

constexpr std::uint32_t kTraceMagic = 0x44435354;  // "DCST"
constexpr std::uint32_t kTraceVersion = 1;

struct FileCloser {
  void operator()(std::FILE* f) const {
    if (f != nullptr) std::fclose(f);
  }
};
using FilePtr = std::unique_ptr<std::FILE, FileCloser>;

bool WriteU32(std::FILE* f, std::uint32_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool WriteU64(std::FILE* f, std::uint64_t v) {
  return std::fwrite(&v, sizeof(v), 1, f) == 1;
}

bool ReadU32(std::FILE* f, std::uint32_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

bool ReadU64(std::FILE* f, std::uint64_t* v) {
  return std::fread(v, sizeof(*v), 1, f) == 1;
}

std::uint64_t PacketChecksum(const Packet& pkt, std::uint64_t running) {
  std::uint64_t h = HashFlowLabel(pkt.flow, /*seed=*/0xC0FFEE);
  h = HashCombine(h, Hash64(pkt.payload, /*seed=*/0xF00D));
  h = HashCombine(h, pkt.header_bytes);
  return HashCombine(running, h);
}

}  // namespace

std::size_t PacketTrace::TotalWireBytes() const {
  std::size_t total = 0;
  for (const Packet& pkt : packets_) total += pkt.wire_bytes();
  return total;
}

std::vector<PacketTrace::EpochView> PacketTrace::SplitIntoEpochs(
    std::size_t packets_per_epoch) const {
  DCS_CHECK(packets_per_epoch > 0);
  std::vector<EpochView> epochs;
  for (std::size_t start = 0; start < packets_.size();
       start += packets_per_epoch) {
    EpochView view;
    view.data = packets_.data() + start;
    view.count = std::min(packets_per_epoch, packets_.size() - start);
    epochs.push_back(view);
  }
  return epochs;
}

Status PacketTrace::WriteToFile(const std::string& path) const {
  FilePtr f(std::fopen(path.c_str(), "wb"));
  if (f == nullptr) {
    return Status::IoError("cannot open for write: " + path);
  }
  if (!WriteU32(f.get(), kTraceMagic) || !WriteU32(f.get(), kTraceVersion) ||
      !WriteU64(f.get(), packets_.size())) {
    return Status::IoError("header write failed: " + path);
  }
  std::uint64_t checksum = 0;
  for (const Packet& pkt : packets_) {
    checksum = PacketChecksum(pkt, checksum);
    if (!WriteU32(f.get(), pkt.flow.src_ip) ||
        !WriteU32(f.get(), pkt.flow.dst_ip) ||
        !WriteU32(f.get(), (static_cast<std::uint32_t>(pkt.flow.src_port)
                            << 16) |
                               pkt.flow.dst_port) ||
        !WriteU32(f.get(), (static_cast<std::uint32_t>(pkt.flow.protocol)
                            << 24) |
                               (pkt.header_bytes & 0xFFFFFF)) ||
        !WriteU64(f.get(), pkt.payload.size())) {
      return Status::IoError("packet header write failed: " + path);
    }
    if (!pkt.payload.empty() &&
        std::fwrite(pkt.payload.data(), 1, pkt.payload.size(), f.get()) !=
            pkt.payload.size()) {
      return Status::IoError("payload write failed: " + path);
    }
  }
  if (!WriteU64(f.get(), checksum)) {
    return Status::IoError("checksum write failed: " + path);
  }
  return Status::Ok();
}

Status PacketTrace::ReadFromFile(const std::string& path, PacketTrace* out) {
  DCS_CHECK(out != nullptr);
  FilePtr f(std::fopen(path.c_str(), "rb"));
  if (f == nullptr) {
    return Status::NotFound("cannot open for read: " + path);
  }
  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!ReadU32(f.get(), &magic) || !ReadU32(f.get(), &version) ||
      !ReadU64(f.get(), &count)) {
    return Status::Corruption("truncated trace header: " + path);
  }
  if (magic != kTraceMagic) {
    return Status::Corruption("bad magic in trace file: " + path);
  }
  if (version != kTraceVersion) {
    return Status::Corruption("unsupported trace version: " + path);
  }
  PacketTrace trace;
  trace.packets_.reserve(count);
  std::uint64_t checksum = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    Packet pkt;
    std::uint32_t ports = 0;
    std::uint32_t proto_header = 0;
    std::uint64_t payload_size = 0;
    if (!ReadU32(f.get(), &pkt.flow.src_ip) ||
        !ReadU32(f.get(), &pkt.flow.dst_ip) || !ReadU32(f.get(), &ports) ||
        !ReadU32(f.get(), &proto_header) ||
        !ReadU64(f.get(), &payload_size)) {
      return Status::Corruption("truncated packet record: " + path);
    }
    pkt.flow.src_port = static_cast<std::uint16_t>(ports >> 16);
    pkt.flow.dst_port = static_cast<std::uint16_t>(ports & 0xFFFF);
    pkt.flow.protocol = static_cast<std::uint8_t>(proto_header >> 24);
    pkt.header_bytes = proto_header & 0xFFFFFF;
    pkt.payload.resize(payload_size);
    if (payload_size > 0 &&
        std::fread(pkt.payload.data(), 1, payload_size, f.get()) !=
            payload_size) {
      return Status::Corruption("truncated payload: " + path);
    }
    checksum = PacketChecksum(pkt, checksum);
    trace.packets_.push_back(std::move(pkt));
  }
  std::uint64_t stored_checksum = 0;
  if (!ReadU64(f.get(), &stored_checksum)) {
    return Status::Corruption("missing checksum: " + path);
  }
  if (stored_checksum != checksum) {
    return Status::Corruption("checksum mismatch: " + path);
  }
  *out = std::move(trace);
  return Status::Ok();
}

}  // namespace dcs
