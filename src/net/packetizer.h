#ifndef DCS_NET_PACKETIZER_H_
#define DCS_NET_PACKETIZER_H_

#include <cstddef>
#include <string_view>
#include <vector>

#include "net/packet.h"

namespace dcs {

/// Packetization parameters.
struct PacketizerOptions {
  /// Maximum segment size: application bytes per packet. The paper targets
  /// the popular sizes (536-byte MSS for 576-byte packets, 1460 for 1500).
  std::size_t mss = 536;
  /// Network+transport header bytes added to every segment.
  std::uint32_t header_bytes = 40;
};

/// \brief Chops `prefix + content` into MSS-sized packets of one flow.
///
/// This models the paper's two cases exactly:
/// * aligned: prefix is empty, so packet i of any instance of `content`
///   carries the same payload;
/// * unaligned: a variable-length prefix (e.g. the per-recipient SMTP header
///   of an email worm) shifts the content by `prefix.size() mod mss`, so
///   fragments at a fixed offset differ between instances (Section II-A).
///
/// The last packet may be short; every other packet carries exactly mss
/// bytes.
std::vector<Packet> PacketizeObject(const FlowLabel& flow,
                                    std::string_view prefix,
                                    std::string_view content,
                                    const PacketizerOptions& options);

}  // namespace dcs

#endif  // DCS_NET_PACKETIZER_H_
