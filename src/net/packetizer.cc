#include "net/packetizer.h"

#include <string>

#include "common/logging.h"

namespace dcs {

std::vector<Packet> PacketizeObject(const FlowLabel& flow,
                                    std::string_view prefix,
                                    std::string_view content,
                                    const PacketizerOptions& options) {
  DCS_CHECK(options.mss > 0);
  std::string stream;
  stream.reserve(prefix.size() + content.size());
  stream.append(prefix);
  stream.append(content);

  std::vector<Packet> packets;
  packets.reserve((stream.size() + options.mss - 1) / options.mss);
  for (std::size_t pos = 0; pos < stream.size(); pos += options.mss) {
    Packet pkt;
    pkt.flow = flow;
    pkt.header_bytes = options.header_bytes;
    pkt.payload = stream.substr(pos, options.mss);
    packets.push_back(std::move(pkt));
  }
  return packets;
}

}  // namespace dcs
