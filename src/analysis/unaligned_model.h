#ifndef DCS_ANALYSIS_UNALIGNED_MODEL_H_
#define DCS_ANALYSIS_UNALIGNED_MODEL_H_

#include <cstddef>
#include <cstdint>

namespace dcs {

/// Physical parameters of the unaligned sketch deployment (Section IV-A /
/// V-B defaults: 10 arrays of 1,024 bits, offsets modulo 536, arrays filled
/// to ~50% by ~710 background insertions).
struct UnalignedModelOptions {
  std::size_t array_bits = 1024;          ///< N.
  std::size_t num_offsets = 10;           ///< k (arrays per group).
  std::size_t offset_period = 536;        ///< MSS; offsets live mod this.
  /// Background packet insertions per array per epoch. The paper's stated
  /// workload (75,000 packets per link over 128 groups) gives ~586
  /// insertions (~44% fill); q(g) is extremely sensitive to this fill, and
  /// 500 insertions (~39% fill) calibrates our first-principles model to
  /// the magnitudes of the paper's Tables I-III. The stress bench sweeps
  /// this axis explicitly.
  double background_insertions = 500.0;
};

/// \brief First-principles signal model for the unaligned case.
///
/// Derives, from the sketch geometry, the quantities the paper's
/// Monte-Carlo experiments are parameterized by:
///  * p_offset_match = 1 - e^{-k^2/536}: probability that two routers'
///    offset sets align for a shared content (Section IV-A);
///  * q(g): probability that an offset-matched row pair crosses its
///    lambda threshold, given the content spans g packets — the weak-signal
///    exceedance that makes required cluster sizes fall steeply with g;
///  * p2(g) = p_offset_match * q(g) + p1: the pattern-pair edge
///    probability driving Fig 13 and Tables I-III.
class UnalignedSignalModel {
 public:
  explicit UnalignedSignalModel(const UnalignedModelOptions& options);

  /// 1 - e^{-k^2/period}.
  double p_offset_match() const { return p_offset_match_; }

  /// Expected number of 1s in a background-only row.
  double background_row_ones() const { return background_row_ones_; }

  /// Expected number of 1s in a row that also carries a g-packet content
  /// instance (hash collisions included).
  double pattern_row_ones(std::size_t g) const;

  /// Number of distinct indices a g-packet content marks in an N-bit array:
  /// N (1 - e^{-g/N}).
  double distinct_content_indices(std::size_t g) const;

  /// q(g): P[common 1s of an offset-matched row pair > lambda_{i,j}], with
  /// i = j = round(pattern_row_ones(g)) and lambda from `p_star`. The
  /// matched pair shares the content's g' indices plus hypergeometric
  /// background overlap.
  double MatchExceedProb(std::size_t g, double p_star) const;

  /// Pattern-pair edge probability p2(g) for a lambda table at `p_star`,
  /// with null edge probability `p1` folded in.
  double PatternEdgeProb(std::size_t g, double p_star, double p1) const;

  const UnalignedModelOptions& options() const { return options_; }

 private:
  UnalignedModelOptions options_;
  double p_offset_match_;
  double background_row_ones_;
};

}  // namespace dcs

#endif  // DCS_ANALYSIS_UNALIGNED_MODEL_H_
