#include "analysis/weight_screen.h"

#include <algorithm>
#include <queue>
#include <utility>

namespace dcs {

std::vector<std::size_t> TopKIndices(const std::vector<std::uint32_t>& values,
                                     std::size_t k) {
  k = std::min(k, values.size());
  if (k == 0) return {};
  // Min-heap of the best k (value, negated index for tie order).
  using Entry = std::pair<std::uint32_t, std::size_t>;
  auto better = [](const Entry& a, const Entry& b) {
    // a "better" than b: larger value, or equal value and smaller index.
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  };
  std::vector<Entry> heap;
  heap.reserve(k);
  auto cmp = [&](const Entry& a, const Entry& b) { return better(a, b); };
  for (std::size_t i = 0; i < values.size(); ++i) {
    const Entry entry{values[i], i};
    if (heap.size() < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (better(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort(heap.begin(), heap.end(), better);
  std::vector<std::size_t> result;
  result.reserve(heap.size());
  for (const Entry& e : heap) result.push_back(e.second);
  return result;
}

ScreenedColumns ScreenHeaviestColumns(const BitMatrix& matrix,
                                      std::size_t n_prime) {
  ScreenedColumns screened;
  screened.num_rows = matrix.rows();
  screened.num_source_columns = matrix.cols();
  const std::vector<std::uint32_t> weights = matrix.ColumnWeights();
  screened.original_ids = TopKIndices(weights, n_prime);
  screened.columns = matrix.ExtractColumns(screened.original_ids);
  screened.weights.reserve(screened.original_ids.size());
  for (std::size_t id : screened.original_ids) {
    screened.weights.push_back(weights[id]);
  }
  return screened;
}

}  // namespace dcs
