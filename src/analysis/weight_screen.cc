#include "analysis/weight_screen.h"

#include <algorithm>
#include <utility>

#include "common/bit_kernels.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {
namespace {

// (weight, column id) under the screen's total order: heavier first, ties by
// lower id. Total — so per-shard top-k merges to the exact global top-k no
// matter how the columns were sharded.
using Entry = std::pair<std::uint32_t, std::size_t>;

bool EntryBetter(const Entry& a, const Entry& b) {
  return a.first > b.first || (a.first == b.first && a.second < b.second);
}

// Accumulates, into weights[c] for c in the word-aligned column range of
// `shard`, the number of 1s each column has across all rows, via the
// carry-save positional-popcount kernel. Shards own disjoint weight slices,
// so the parallel fill is race-free. `row_words` is the matrix's row
// pointers, gathered once per screen.
void AccumulateColumnWeights(const std::vector<const std::uint64_t*>& row_words,
                             const ShardRange& shard,
                             std::vector<std::uint32_t>* weights) {
  AccumulateColumnCounts(row_words.data(), row_words.size(), shard.begin,
                         shard.end, weights->data());
}

}  // namespace

std::vector<std::size_t> TopKIndicesInRange(
    const std::vector<std::uint32_t>& values, std::size_t begin,
    std::size_t end, std::size_t k) {
  end = std::min(end, values.size());
  begin = std::min(begin, end);
  k = std::min(k, end - begin);
  if (k == 0) return {};
  // Min-heap of the best k: EntryBetter as "less" puts the worst kept entry
  // at the front, where the next candidate challenges it.
  std::vector<Entry> heap;
  heap.reserve(k);
  auto cmp = [](const Entry& a, const Entry& b) { return EntryBetter(a, b); };
  for (std::size_t i = begin; i < end; ++i) {
    const Entry entry{values[i], i};
    if (heap.size() < k) {
      heap.push_back(entry);
      std::push_heap(heap.begin(), heap.end(), cmp);
    } else if (EntryBetter(entry, heap.front())) {
      std::pop_heap(heap.begin(), heap.end(), cmp);
      heap.back() = entry;
      std::push_heap(heap.begin(), heap.end(), cmp);
    }
  }
  std::sort(heap.begin(), heap.end(), EntryBetter);
  std::vector<std::size_t> result;
  result.reserve(heap.size());
  for (const Entry& e : heap) result.push_back(e.second);
  return result;
}

std::vector<std::size_t> TopKIndices(const std::vector<std::uint32_t>& values,
                                     std::size_t k) {
  return TopKIndicesInRange(values, 0, values.size(), k);
}

ScreenedColumns ScreenHeaviestColumns(
    const BitMatrix& matrix, std::size_t n_prime, ThreadPool* pool,
    const std::vector<std::uint32_t>* precomputed_weights) {
  ScopedStageTimer stage("weight_screen");
  ScreenedColumns screened;
  screened.num_rows = matrix.rows();
  screened.num_source_columns = matrix.cols();
  if (matrix.cols() == 0) return screened;

  const bool obs = ObsEnabled();
  LatencyHistogram* task_hist =
      obs && pool != nullptr ? &ObsHistogram("stage.weight_screen_task.ns")
                             : nullptr;

  // Pass 1 — weights plus per-shard heaviest-k, sharded over word-aligned
  // column slices (64-column granularity keeps every slice's bit loop on
  // whole words). With precomputed weights the accumulation is skipped and
  // only the selection runs over the caller's vector (the hot start).
  const bool hot = precomputed_weights != nullptr;
  if (hot) {
    DCS_CHECK(precomputed_weights->size() == matrix.cols())
        << "precomputed weights cover " << precomputed_weights->size()
        << " columns, matrix has " << matrix.cols();
  }
  const std::size_t col_words = (matrix.cols() + 63) / 64;
  const std::vector<ShardRange> shards =
      pool != nullptr ? pool->ShardsFor(col_words) : MakeShards(col_words, 1);
  std::vector<std::uint32_t> scratch;
  if (!hot) scratch.assign(matrix.cols(), 0);
  const std::vector<std::uint32_t>& weights =
      hot ? *precomputed_weights : scratch;
  std::vector<const std::uint64_t*> row_words;
  if (!hot) {
    row_words.reserve(matrix.rows());
    for (std::size_t r = 0; r < matrix.rows(); ++r) {
      row_words.push_back(matrix.row(r).words());
    }
  }
  std::vector<std::vector<std::size_t>> shard_top(shards.size());
  const auto weigh_shard = [&](const ShardRange& shard) {
    StageStopwatch watch;
    if (task_hist != nullptr) watch.Start();
    if (!hot) AccumulateColumnWeights(row_words, shard, &scratch);
    shard_top[shard.index] = TopKIndicesInRange(
        weights, shard.begin * 64, std::min(shard.end * 64, matrix.cols()),
        n_prime);
    if (task_hist != nullptr) task_hist->Record(watch.ElapsedNanos());
  };
  if (pool != nullptr) {
    pool->RunShards(shards, weigh_shard);
  } else {
    for (const ShardRange& shard : shards) weigh_shard(shard);
  }

  // Merge shard candidates in the total order and keep the global top n'.
  // Every global winner is a winner of its own shard, so the union of the
  // shard top-k lists contains the exact answer.
  std::vector<Entry> merged;
  for (const std::vector<std::size_t>& top : shard_top) {
    for (std::size_t id : top) merged.emplace_back(weights[id], id);
  }
  std::sort(merged.begin(), merged.end(), EntryBetter);
  if (merged.size() > n_prime) merged.resize(n_prime);
  screened.original_ids.reserve(merged.size());
  screened.weights.reserve(merged.size());
  for (const Entry& e : merged) {
    screened.original_ids.push_back(e.second);
    screened.weights.push_back(e.first);
  }

  // Pass 2 — extract the chosen columns, sharded over the selection (each
  // shard writes its own disjoint BitVectors).
  screened.columns.assign(screened.original_ids.size(),
                          BitVector(matrix.rows()));
  const auto extract_shard = [&](const ShardRange& shard) {
    StageStopwatch watch;
    if (task_hist != nullptr) watch.Start();
    for (std::size_t r = 0; r < matrix.rows(); ++r) {
      const BitVector& row = matrix.row(r);
      for (std::size_t i = shard.begin; i < shard.end; ++i) {
        if (row.Test(screened.original_ids[i])) screened.columns[i].Set(r);
      }
    }
    if (task_hist != nullptr) task_hist->Record(watch.ElapsedNanos());
  };
  const std::vector<ShardRange> extract_shards =
      pool != nullptr ? pool->ShardsFor(screened.original_ids.size())
                      : MakeShards(screened.original_ids.size(), 1);
  if (pool != nullptr) {
    pool->RunShards(extract_shards, extract_shard);
  } else {
    for (const ShardRange& shard : extract_shards) extract_shard(shard);
  }

  if (obs) {
    ObsCounter("screen.runs").Increment();
    if (hot) ObsCounter("screen.hot_starts").Increment();
    ObsCounter("screen.shard_tasks").Add(shards.size() +
                                         extract_shards.size());
  }
  return screened;
}

}  // namespace dcs
