#ifndef DCS_ANALYSIS_UNALIGNED_GRAPH_BUILDER_H_
#define DCS_ANALYSIS_UNALIGNED_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "analysis/correlation.h"
#include "analysis/lambda_table.h"
#include "graph/graph.h"

namespace dcs {

/// Parameters for converting the stacked sketch matrix into a correlation
/// graph (Section IV-B).
struct GraphBuilderOptions {
  /// Rows per group (the paper's 10 offset arrays).
  std::size_t arrays_per_group = 10;
  /// Scan controls (parallelism, vertex sampling) — Section IV-D.
  PairScanOptions scan;
};

/// \brief Induces the group graph: vertices are groups, and an edge joins
/// two groups iff some pair of their rows shares more common 1s than
/// lambda_{i,j}.
///
/// `matrix` is group-major: rows [g * arrays_per_group, (g+1) *
/// arrays_per_group) belong to group g, exactly how FlowSplitSketch and the
/// analysis center's vertical merge lay them out. Row weights are
/// precomputed once; the hypergeometric thresholds come from `lambda`,
/// which is calibrated up front over the observed weights.
///
/// With a pool in `options.scan`, the weight pass, the lambda calibration,
/// and the pair scan all run sharded; each scan shard buffers its own
/// edges and the buffers merge in ascending shard order, so the edge list
/// (and therefore the graph) is bit-identical at any thread count,
/// including no pool at all (docs/PARALLELISM.md).
Graph BuildCorrelationGraph(const BitMatrix& matrix,
                            const LambdaTable& lambda,
                            const GraphBuilderOptions& options);

}  // namespace dcs

#endif  // DCS_ANALYSIS_UNALIGNED_GRAPH_BUILDER_H_
