#ifndef DCS_ANALYSIS_ANALYSIS_CONTEXT_H_
#define DCS_ANALYSIS_ANALYSIS_CONTEXT_H_

#include "common/thread_pool.h"

namespace dcs {

/// \brief Execution resources shared by the analysis-center pipelines.
///
/// Section IV-D observes the correlation work is embarrassingly parallel and
/// should be spread over many CPUs; this context carries the pool that does
/// it. One context serves both pipelines of an epoch: the aligned engine
/// (weight screen, hopefuls iterations, core scan) uses it directly, and the
/// monitor copies the pool into the unaligned PairScanOptions when none was
/// set there. A null pool means run serially; every parallel stage is
/// sharded with a deterministic merge, so results are bit-identical at any
/// thread count, including null.
struct AnalysisContext {
  ThreadPool* pool = nullptr;
};

}  // namespace dcs

#endif  // DCS_ANALYSIS_ANALYSIS_CONTEXT_H_
