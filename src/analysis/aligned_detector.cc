#include "analysis/aligned_detector.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/bit_kernels.h"
#include "common/hash.h"
#include "common/logging.h"
#include "analysis/aligned_thresholds.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {
namespace {

// A b'-product: the AND of b' columns, with the paper's A_v column set.
struct Product {
  BitVector bits;
  std::vector<std::uint32_t> cols;  // Indices into the screened set, sorted.
  std::uint32_t weight = 0;
};

// A candidate product extension: its weight plus the (a, b) pair that
// identifies it — (column i, column j) in the pair pass, (hopeful h, column
// c) in the extension passes.
struct Cand {
  std::uint32_t weight = 0;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

// The engine's total order: heavier first, ties by smaller (a, b). Because
// it is total, the top-H of a candidate set is a well-defined *set*, and the
// union of per-shard top-H lists always contains it — which is what lets
// the sharded passes merge to bit-identical results at any thread count.
bool CandBetter(const Cand& x, const Cand& y) {
  if (x.weight != y.weight) return x.weight > y.weight;
  if (x.a != y.a) return x.a < y.a;
  return x.b < y.b;
}

// Bounded heap keeping the H best candidates under CandBetter. Using
// CandBetter as the heap's "less" keeps the worst retained candidate at the
// front, where the next candidate challenges it.
class TopH {
 public:
  explicit TopH(std::size_t capacity) : capacity_(capacity) {}

  void Offer(const Cand& cand) {
    if (heap_.size() < capacity_) {
      heap_.push_back(cand);
      std::push_heap(heap_.begin(), heap_.end(), CandBetter);
    } else if (CandBetter(cand, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), CandBetter);
      heap_.back() = cand;
      std::push_heap(heap_.begin(), heap_.end(), CandBetter);
    }
  }

  /// Weight a candidate must reach to possibly be kept. Zero-weight products
  /// are never hopefuls, hence the floor of 1 while filling; at exactly this
  /// weight candidates still compete on column ids.
  std::uint32_t floor_weight() const {
    return heap_.size() < capacity_ ? 1 : heap_.front().weight;
  }

  /// Entries in the total order (best first).
  std::vector<Cand> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), CandBetter);
    return std::move(heap_);
  }

 private:
  std::size_t capacity_;
  std::vector<Cand> heap_;
};

// Concatenates per-shard top lists and keeps the global top `capacity`
// under the total order. Exact regardless of shard boundaries (see
// CandBetter).
std::vector<Cand> MergeTopCands(std::vector<std::vector<Cand>>* shard_cands,
                                std::size_t capacity) {
  if (shard_cands->size() == 1) return std::move(shard_cands->front());
  std::vector<Cand> merged;
  std::size_t total = 0;
  for (const std::vector<Cand>& cands : *shard_cands) total += cands.size();
  merged.reserve(total);
  for (const std::vector<Cand>& cands : *shard_cands) {
    merged.insert(merged.end(), cands.begin(), cands.end());
  }
  std::sort(merged.begin(), merged.end(), CandBetter);
  if (merged.size() > capacity) merged.resize(capacity);
  return merged;
}

// Candidate buffer size for the batched AND+popcount passes. Candidates are
// admitted in scan order under the floor current at admission time — a
// superset of the pairs the unbatched loop would have computed, since the
// floor only rises — and every offer re-checks against the live floor in
// the original order, so the heap evolves bit-identically to the unbatched
// scan while the counting runs through one blocked kernel call per flush.
constexpr std::size_t kBatchCands = 128;

// One partition for the serial engine, the pool's partition otherwise.
std::vector<ShardRange> ShardsOrWhole(ThreadPool* pool, std::size_t count) {
  return pool != nullptr ? pool->ShardsFor(count) : MakeShards(count, 1);
}

void RunSharded(ThreadPool* pool, const std::vector<ShardRange>& shards,
                const std::function<void(const ShardRange&)>& fn) {
  if (pool != nullptr) {
    pool->RunShards(shards, fn);
    return;
  }
  for (const ShardRange& shard : shards) fn(shard);
}

std::uint64_t ColumnSetFingerprint(const std::vector<std::uint32_t>& cols) {
  std::uint64_t h = 0x5EAFC0DE;
  for (std::uint32_t c : cols) h = HashCombine(h, Mix64(c + 1));
  return h;
}

}  // namespace

AlignedDetector::AlignedDetector(const AlignedDetectorOptions& options)
    : AlignedDetector(options, AnalysisContext{}) {}

AlignedDetector::AlignedDetector(const AlignedDetectorOptions& options,
                                 const AnalysisContext& context)
    : options_(options), context_(context) {
  DCS_CHECK(options.first_iteration_hopefuls >= 1);
  DCS_CHECK(options.hopefuls >= 1);
  DCS_CHECK(options.max_iterations >= 2);
}

AlignedDetection AlignedDetector::Detect(
    const ScreenedColumns& screened) const {
  ScopedStageTimer stage("aligned_detect");
  ObsCounter("detector.aligned.runs").Increment();
  ThreadPool* pool = context_.pool;
  // Per-shard task timers, hoisted so hot loops touch only lock-free metric
  // objects (the name lookup takes the registry mutex once per Detect).
  const bool obs = ObsEnabled();
  LatencyHistogram* pair_hist =
      obs && pool != nullptr ? &ObsHistogram("stage.aligned_pair_task.ns")
                             : nullptr;
  LatencyHistogram* ext_hist =
      obs && pool != nullptr ? &ObsHistogram("stage.aligned_extend_task.ns")
                             : nullptr;
  // Why the search stopped iterating; flushed as a detector.aligned.stop.*
  // counter on every exit path below.
  const char* stop_reason = "exhausted";
  AlignedDetection detection;
  const auto report_stop = [&detection](const char* reason) {
    if (!ObsEnabled()) return;
    ObsCounter(std::string("detector.aligned.stop.") + reason).Increment();
    ObsGauge("detector.aligned.stop_iteration")
        .Set(static_cast<double>(detection.stop_iteration));
  };
  const std::size_t n_cols = screened.columns.size();
  const std::size_t m = screened.num_rows;
  if (n_cols < 2 || m == 0) {
    report_stop("empty_input");
    return detection;
  }

  // --- Iteration b' = 2: all column pairs, keep the heaviest hopefuls.
  // Sharded over the first column; each shard keeps its own bounded heap
  // and the merge recovers the exact global top list.
  const std::vector<ShardRange> pair_shards = ShardsOrWhole(pool, n_cols);
  std::vector<std::vector<Cand>> shard_pairs(pair_shards.size());
  RunSharded(pool, pair_shards, [&](const ShardRange& shard) {
    StageStopwatch watch;
    if (pair_hist != nullptr) watch.Start();
    TopH heap(options_.first_iteration_hopefuls);
    std::uint32_t cand_ids[kBatchCands];
    const std::uint64_t* cand_rows[kBatchCands];
    std::uint32_t cand_weights[kBatchCands];
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      const BitVector& ci = screened.columns[i];
      const std::uint32_t wi = screened.weights[i];
      std::size_t buffered = 0;
      const auto flush = [&] {
        ActiveBitKernels().and_count_batch(ci.words(), cand_rows, buffered,
                                           ci.num_words(), cand_weights);
        for (std::size_t k = 0; k < buffered; ++k) {
          if (cand_weights[k] >= heap.floor_weight()) {
            heap.Offer({cand_weights[k], static_cast<std::uint32_t>(i),
                        cand_ids[k]});
          }
        }
        buffered = 0;
      };
      for (std::size_t j = i + 1; j < n_cols; ++j) {
        // AND weight can't beat min(w_i, w_j); skip hopeless pairs cheaply.
        if (std::min(wi, screened.weights[j]) < heap.floor_weight()) {
          continue;
        }
        cand_ids[buffered] = static_cast<std::uint32_t>(j);
        cand_rows[buffered] = screened.columns[j].words();
        if (++buffered == kBatchCands) flush();
      }
      if (buffered > 0) flush();
    }
    shard_pairs[shard.index] = heap.TakeSorted();
    if (pair_hist != nullptr) pair_hist->Record(watch.ElapsedNanos());
  });
  const std::vector<Cand> pair_cands =
      MergeTopCands(&shard_pairs, options_.first_iteration_hopefuls);

  std::vector<Product> hopefuls;
  hopefuls.reserve(pair_cands.size());
  for (const Cand& cand : pair_cands) {
    Product product;
    product.bits.AssignAnd(screened.columns[cand.a],
                           screened.columns[cand.b]);
    product.cols = {cand.a, cand.b};
    product.weight = cand.weight;
    hopefuls.push_back(std::move(product));
  }
  if (hopefuls.empty()) {
    report_stop("no_hopefuls");
    return detection;
  }

  detection.weight_trajectory.push_back(hopefuls.front().weight);
  if (obs) {
    static Counter& iters = ObsCounter("detector.aligned.iterations");
    static LatencyHistogram& hop =
        ObsHistogram("detector.aligned.hopefuls_per_iteration");
    static LatencyHistogram& wt =
        ObsHistogram("detector.aligned.iteration_weight");
    iters.Increment();
    hop.Record(hopefuls.size());
    wt.Record(hopefuls.front().weight);
  }

  // Mean density of the screened columns: the significance gate must use it
  // rather than 1/2, because the screen hands us columns that were selected
  // for weight.
  double density_sum = 0.0;
  for (std::uint32_t w : screened.weights) density_sum += w;
  const double density = std::clamp(
      density_sum / (static_cast<double>(n_cols) * static_cast<double>(m)),
      0.5, 0.999);

  // Track the most significant (lowest natural-occurrence bound) product
  // seen across iterations; the weight-loss heuristics below only decide
  // when to stop iterating early.
  auto significance = [&](const Product& p) {
    return LogNaturalOccurrenceBoundDensity(
        static_cast<std::int64_t>(m), static_cast<std::int64_t>(n_cols),
        static_cast<std::int64_t>(p.weight),
        static_cast<std::int64_t>(p.cols.size()), density);
  };
  Product best_product = hopefuls.front();
  double best_log_bound = significance(best_product);
  std::size_t best_iteration = 2;
  bool flattened = false;
  bool dive_detected = false;
  double prev_weight = static_cast<double>(hopefuls.front().weight);

  // --- Iterations b' >= 3: extend each hopeful by one more column.
  // Sharded over the hopefuls; every shard ranks its hopefuls' extensions
  // against all columns into a bounded heap, merged like the pair pass.
  for (std::size_t iter = 3; iter <= options_.max_iterations; ++iter) {
    const std::vector<ShardRange> ext_shards =
        ShardsOrWhole(pool, hopefuls.size());
    std::vector<std::vector<Cand>> shard_exts(ext_shards.size());
    RunSharded(pool, ext_shards, [&](const ShardRange& shard) {
      StageStopwatch watch;
      if (ext_hist != nullptr) watch.Start();
      TopH heap(options_.hopefuls);
      std::uint32_t cand_ids[kBatchCands];
      const std::uint64_t* cand_rows[kBatchCands];
      std::uint32_t cand_weights[kBatchCands];
      for (std::size_t h = shard.begin; h < shard.end; ++h) {
        const Product& v = hopefuls[h];
        if (v.weight < heap.floor_weight()) continue;  // Can only shrink.
        std::size_t buffered = 0;
        const auto flush = [&] {
          ActiveBitKernels().and_count_batch(v.bits.words(), cand_rows,
                                             buffered, v.bits.num_words(),
                                             cand_weights);
          for (std::size_t k = 0; k < buffered; ++k) {
            if (cand_weights[k] >= heap.floor_weight()) {
              heap.Offer({cand_weights[k], static_cast<std::uint32_t>(h),
                          cand_ids[k]});
            }
          }
          buffered = 0;
        };
        for (std::uint32_t c = 0; c < n_cols; ++c) {
          if (std::binary_search(v.cols.begin(), v.cols.end(), c)) continue;
          if (std::min(v.weight, screened.weights[c]) < heap.floor_weight()) {
            continue;
          }
          cand_ids[buffered] = c;
          cand_rows[buffered] = screened.columns[c].words();
          if (++buffered == kBatchCands) flush();
        }
        if (buffered > 0) flush();
      }
      shard_exts[shard.index] = heap.TakeSorted();
      if (ext_hist != nullptr) ext_hist->Record(watch.ElapsedNanos());
    });
    const std::vector<Cand> ext_cands =
        MergeTopCands(&shard_exts, options_.hopefuls);

    // Dedup identical column sets in the canonical order, then materialize
    // the surviving products' bits (in parallel when they carry enough
    // rows to be worth the fan-out; each slot is written by one task).
    std::vector<Product> next;
    std::vector<Cand> kept;
    next.reserve(ext_cands.size());
    kept.reserve(ext_cands.size());
    std::unordered_set<std::uint64_t> seen;
    for (const Cand& cand : ext_cands) {
      const Product& parent = hopefuls[cand.a];
      std::vector<std::uint32_t> cols = parent.cols;
      cols.insert(std::lower_bound(cols.begin(), cols.end(), cand.b),
                  cand.b);
      if (!seen.insert(ColumnSetFingerprint(cols)).second) continue;
      Product product;
      product.cols = std::move(cols);
      product.weight = cand.weight;
      next.push_back(std::move(product));
      kept.push_back(cand);
    }
    if (next.empty()) {
      stop_reason = "no_extensions";
      break;
    }
    const auto materialize = [&](std::size_t idx) {
      next[idx].bits.AssignAnd(hopefuls[kept[idx].a].bits,
                               screened.columns[kept[idx].b]);
    };
    if (pool != nullptr && next.size() >= 64) {
      pool->ParallelFor(next.size(), materialize);
    } else {
      for (std::size_t idx = 0; idx < next.size(); ++idx) materialize(idx);
    }
    hopefuls = std::move(next);

    const double cur_weight = static_cast<double>(hopefuls.front().weight);
    detection.weight_trajectory.push_back(hopefuls.front().weight);
    if (obs) {
      static Counter& iters = ObsCounter("detector.aligned.iterations");
      static LatencyHistogram& hop =
          ObsHistogram("detector.aligned.hopefuls_per_iteration");
      static LatencyHistogram& wt =
          ObsHistogram("detector.aligned.iteration_weight");
      iters.Increment();
      hop.Record(hopefuls.size());
      wt.Record(hopefuls.front().weight);
    }

    const double log_bound = significance(hopefuls.front());
    if (log_bound < best_log_bound) {
      best_log_bound = log_bound;
      best_product = hopefuls.front();
      best_iteration = iter;
    }

    // Termination procedure (Section III-B): the weight first decays
    // steeply per iteration while noise rows are being zeroed out, flattens
    // as the product absorbs pattern columns, then dives again once the
    // pattern is exhausted. Stop shortly after the second dive begins (the
    // best product is already recorded). Tiny weights make the ratio
    // meaningless, so flattening requires some mass left.
    if (!dive_detected && prev_weight > 0) {
      const double ratio = cur_weight / prev_weight;
      if (flattened && ratio <= options_.dive_ratio) {
        dive_detected = true;
        stop_reason = "dive";
        if (!options_.record_full_trajectory) break;
      } else if (ratio >= options_.flatten_ratio && cur_weight >= 8.0) {
        flattened = true;
      }
    }
    prev_weight = cur_weight;
    if (hopefuls.front().weight == 0) {
      stop_reason = "zero_weight";
      break;
    }
    // Pure-noise fast path: once the heaviest product is down to a handful
    // of rows without ever flattening, no later product can become
    // significant — products only lose weight.
    if (!options_.record_full_trajectory && !flattened &&
        hopefuls.front().weight < 4) {
      stop_reason = "noise_floor";
      break;
    }
  }

  detection.stop_iteration = best_iteration;
  report_stop(stop_reason);

  // Non-naturally-occurring gate (Fig 5 line 6) within the searched
  // submatrix, at the screened density.
  if (best_log_bound > std::log(options_.nno_epsilon)) {
    ObsCounter("detector.aligned.nno_rejected").Increment();
    return detection;
  }

  ObsCounter("detector.aligned.detections").Increment();
  detection.pattern_found = true;
  std::vector<std::size_t> set_rows;
  best_product.bits.AppendSetBits(&set_rows);
  detection.rows.assign(set_rows.begin(), set_rows.end());
  detection.columns.reserve(best_product.cols.size());
  for (std::uint32_t c : best_product.cols) {
    detection.columns.push_back(screened.original_ids[c]);
  }
  std::sort(detection.columns.begin(), detection.columns.end());
  return detection;
}

std::vector<AlignedDetection> AlignedDetector::DetectMultipleInMatrix(
    const BitMatrix& matrix, std::size_t n_prime, std::size_t max_patterns,
    const std::vector<std::uint32_t>* column_weights) const {
  ThreadPool* pool = context_.pool;
  std::vector<AlignedDetection> detections;
  BitMatrix working = matrix;
  for (std::size_t round = 0; round < max_patterns; ++round) {
    // Hot-start weights describe the unmodified matrix, so they are only
    // valid before the first erase.
    AlignedDetection detection = DetectInMatrix(
        working, n_prime, round == 0 ? column_weights : nullptr);
    if (!detection.pattern_found) break;
    ObsCounter("detector.aligned.multi_rounds").Increment();
    // Erase the found pattern's columns so the next round sees only what
    // remains. Rows are independent, so the erase fans out per row.
    const auto erase_row = [&working, &detection](std::size_t r) {
      BitVector& row = working.row(r);
      for (std::size_t c : detection.columns) row.Clear(c);
    };
    if (pool != nullptr) {
      pool->ParallelFor(working.rows(), erase_row);
    } else {
      for (std::size_t r = 0; r < working.rows(); ++r) erase_row(r);
    }
    detections.push_back(std::move(detection));
  }
  return detections;
}

AlignedDetection AlignedDetector::DetectInMatrix(
    const BitMatrix& matrix, std::size_t n_prime,
    const std::vector<std::uint32_t>* column_weights) const {
  ThreadPool* pool = context_.pool;
  const ScreenedColumns screened =
      ScreenHeaviestColumns(matrix, n_prime, pool, column_weights);
  AlignedDetection detection = Detect(screened);
  if (!detection.pattern_found) return detection;

  // Fig 6 lines 10-14: scan every column outside S1 against the core.
  // Sharded over word-aligned column slices: each shard accumulates the
  // common-1s counts of its own columns across the core rows and collects
  // its qualifying columns; shards concatenate in ascending column order.
  ScopedStageTimer stage("aligned_core_scan");
  const bool obs = ObsEnabled();
  LatencyHistogram* task_hist =
      obs && pool != nullptr
          ? &ObsHistogram("stage.aligned_core_scan_task.ns")
          : nullptr;
  const std::size_t core_weight = detection.rows.size();
  const std::size_t thresh =
      core_weight > options_.gamma ? core_weight - options_.gamma : 1;

  const std::unordered_set<std::size_t> in_screen(
      screened.original_ids.begin(), screened.original_ids.end());
  std::vector<std::uint32_t> common(matrix.cols(), 0);
  // Core-row word pointers, gathered once; each shard feeds them to the
  // positional-popcount kernel over its own word-aligned column slice, so
  // the parallel fill stays race-free.
  std::vector<const std::uint64_t*> core_rows;
  core_rows.reserve(detection.rows.size());
  for (std::uint32_t r : detection.rows) {
    core_rows.push_back(matrix.row(r).words());
  }
  const std::size_t col_words = (matrix.cols() + 63) / 64;
  const std::vector<ShardRange> shards = ShardsOrWhole(pool, col_words);
  std::vector<std::vector<std::size_t>> shard_cols(shards.size());
  RunSharded(pool, shards, [&](const ShardRange& shard) {
    StageStopwatch watch;
    if (task_hist != nullptr) watch.Start();
    AccumulateColumnCounts(core_rows.data(), core_rows.size(), shard.begin,
                           shard.end, common.data());
    const std::size_t col_end = std::min(shard.end * 64, matrix.cols());
    for (std::size_t c = shard.begin * 64; c < col_end; ++c) {
      if (common[c] >= thresh && !in_screen.contains(c)) {
        shard_cols[shard.index].push_back(c);
      }
    }
    if (task_hist != nullptr) task_hist->Record(watch.ElapsedNanos());
  });
  for (const std::vector<std::size_t>& cols : shard_cols) {
    detection.columns.insert(detection.columns.end(), cols.begin(),
                             cols.end());
  }
  std::sort(detection.columns.begin(), detection.columns.end());
  return detection;
}

}  // namespace dcs
