#include "analysis/aligned_detector.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <unordered_set>
#include <utility>

#include "common/hash.h"
#include "common/logging.h"
#include "analysis/aligned_thresholds.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {
namespace {

// A b'-product: the AND of b' columns, with the paper's A_v column set.
struct Product {
  BitVector bits;
  std::vector<std::uint32_t> cols;  // Indices into the screened set, sorted.
  std::uint32_t weight = 0;
};

// Bounded min-heap of candidate (weight, payload) entries keeping the top H.
template <typename Payload>
class TopH {
 public:
  explicit TopH(std::size_t capacity) : capacity_(capacity) {}

  void Offer(std::uint32_t weight, const Payload& payload) {
    if (heap_.size() < capacity_) {
      heap_.emplace_back(weight, payload);
      std::push_heap(heap_.begin(), heap_.end(), Greater);
    } else if (weight > heap_.front().first) {
      std::pop_heap(heap_.begin(), heap_.end(), Greater);
      heap_.back() = {weight, payload};
      std::push_heap(heap_.begin(), heap_.end(), Greater);
    }
  }

  std::uint32_t floor_weight() const {
    return heap_.size() < capacity_ ? 0 : heap_.front().first;
  }

  /// Entries in descending weight order.
  std::vector<std::pair<std::uint32_t, Payload>> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), Greater);
    return std::move(heap_);
  }

 private:
  static bool Greater(const std::pair<std::uint32_t, Payload>& a,
                      const std::pair<std::uint32_t, Payload>& b) {
    return a.first > b.first;
  }

  std::size_t capacity_;
  std::vector<std::pair<std::uint32_t, Payload>> heap_;
};

std::uint64_t ColumnSetFingerprint(const std::vector<std::uint32_t>& cols) {
  std::uint64_t h = 0x5EAFC0DE;
  for (std::uint32_t c : cols) h = HashCombine(h, Mix64(c + 1));
  return h;
}

}  // namespace

AlignedDetector::AlignedDetector(const AlignedDetectorOptions& options)
    : options_(options) {
  DCS_CHECK(options.first_iteration_hopefuls >= 1);
  DCS_CHECK(options.hopefuls >= 1);
  DCS_CHECK(options.max_iterations >= 2);
}

AlignedDetection AlignedDetector::Detect(
    const ScreenedColumns& screened) const {
  ScopedStageTimer stage("aligned_detect");
  ObsCounter("detector.aligned.runs").Increment();
  // Why the search stopped iterating; flushed as a detector.aligned.stop.*
  // counter on every exit path below.
  const char* stop_reason = "exhausted";
  AlignedDetection detection;
  const auto report_stop = [&detection](const char* reason) {
    if (!ObsEnabled()) return;
    ObsCounter(std::string("detector.aligned.stop.") + reason).Increment();
    ObsGauge("detector.aligned.stop_iteration")
        .Set(static_cast<double>(detection.stop_iteration));
  };
  const std::size_t n_cols = screened.columns.size();
  const std::size_t m = screened.num_rows;
  if (n_cols < 2 || m == 0) {
    report_stop("empty_input");
    return detection;
  }

  // --- Iteration b' = 2: all column pairs, keep the heaviest hopefuls.
  TopH<std::pair<std::uint32_t, std::uint32_t>> pair_heap(
      options_.first_iteration_hopefuls);
  for (std::uint32_t i = 0; i < n_cols; ++i) {
    const BitVector& ci = screened.columns[i];
    const std::uint32_t wi = screened.weights[i];
    for (std::uint32_t j = i + 1; j < n_cols; ++j) {
      // AND weight can't beat min(w_i, w_j); skip hopeless pairs cheaply.
      if (std::min(wi, screened.weights[j]) <= pair_heap.floor_weight()) {
        continue;
      }
      const auto weight = static_cast<std::uint32_t>(
          ci.CommonOnes(screened.columns[j]));
      if (weight > pair_heap.floor_weight()) {
        pair_heap.Offer(weight, {i, j});
      }
    }
  }

  std::vector<Product> hopefuls;
  for (auto& [weight, pair] : pair_heap.TakeSorted()) {
    Product product;
    product.bits = screened.columns[pair.first];
    product.bits.InPlaceAnd(screened.columns[pair.second]);
    product.cols = {pair.first, pair.second};
    product.weight = weight;
    hopefuls.push_back(std::move(product));
  }
  if (hopefuls.empty()) {
    report_stop("no_hopefuls");
    return detection;
  }

  detection.weight_trajectory.push_back(hopefuls.front().weight);
  if (ObsEnabled()) {
    static Counter& iters = ObsCounter("detector.aligned.iterations");
    static LatencyHistogram& hop =
        ObsHistogram("detector.aligned.hopefuls_per_iteration");
    static LatencyHistogram& wt =
        ObsHistogram("detector.aligned.iteration_weight");
    iters.Increment();
    hop.Record(hopefuls.size());
    wt.Record(hopefuls.front().weight);
  }

  // Mean density of the screened columns: the significance gate must use it
  // rather than 1/2, because the screen hands us columns that were selected
  // for weight.
  double density_sum = 0.0;
  for (std::uint32_t w : screened.weights) density_sum += w;
  const double density = std::clamp(
      density_sum / (static_cast<double>(n_cols) * static_cast<double>(m)),
      0.5, 0.999);

  // Track the most significant (lowest natural-occurrence bound) product
  // seen across iterations; the weight-loss heuristics below only decide
  // when to stop iterating early.
  auto significance = [&](const Product& p) {
    return LogNaturalOccurrenceBoundDensity(
        static_cast<std::int64_t>(m), static_cast<std::int64_t>(n_cols),
        static_cast<std::int64_t>(p.weight),
        static_cast<std::int64_t>(p.cols.size()), density);
  };
  Product best_product = hopefuls.front();
  double best_log_bound = significance(best_product);
  std::size_t best_iteration = 2;
  bool flattened = false;
  bool dive_detected = false;
  double prev_weight = static_cast<double>(hopefuls.front().weight);

  // --- Iterations b' >= 3: extend each hopeful by one more column.
  for (std::size_t iter = 3; iter <= options_.max_iterations; ++iter) {
    TopH<std::pair<std::uint32_t, std::uint32_t>> heap(options_.hopefuls);
    for (std::uint32_t h = 0;
         h < static_cast<std::uint32_t>(hopefuls.size()); ++h) {
      const Product& v = hopefuls[h];
      if (v.weight <= heap.floor_weight()) continue;  // Can only shrink.
      for (std::uint32_t c = 0; c < n_cols; ++c) {
        if (std::binary_search(v.cols.begin(), v.cols.end(), c)) continue;
        if (std::min(v.weight, screened.weights[c]) <= heap.floor_weight()) {
          continue;
        }
        const auto weight =
            static_cast<std::uint32_t>(v.bits.CommonOnes(
                screened.columns[c]));
        if (weight > heap.floor_weight()) heap.Offer(weight, {h, c});
      }
    }

    std::vector<Product> next;
    std::unordered_set<std::uint64_t> seen;  // Dedup identical column sets.
    for (auto& [weight, hc] : heap.TakeSorted()) {
      const Product& parent = hopefuls[hc.first];
      std::vector<std::uint32_t> cols = parent.cols;
      cols.insert(std::lower_bound(cols.begin(), cols.end(), hc.second),
                  hc.second);
      if (!seen.insert(ColumnSetFingerprint(cols)).second) continue;
      Product product;
      product.bits = parent.bits;
      product.bits.InPlaceAnd(screened.columns[hc.second]);
      product.cols = std::move(cols);
      product.weight = weight;
      next.push_back(std::move(product));
    }
    if (next.empty()) {
      stop_reason = "no_extensions";
      break;
    }
    hopefuls = std::move(next);

    const double cur_weight = static_cast<double>(hopefuls.front().weight);
    detection.weight_trajectory.push_back(hopefuls.front().weight);
    if (ObsEnabled()) {
      static Counter& iters = ObsCounter("detector.aligned.iterations");
      static LatencyHistogram& hop =
          ObsHistogram("detector.aligned.hopefuls_per_iteration");
      static LatencyHistogram& wt =
          ObsHistogram("detector.aligned.iteration_weight");
      iters.Increment();
      hop.Record(hopefuls.size());
      wt.Record(hopefuls.front().weight);
    }

    const double log_bound = significance(hopefuls.front());
    if (log_bound < best_log_bound) {
      best_log_bound = log_bound;
      best_product = hopefuls.front();
      best_iteration = iter;
    }

    // Termination procedure (Section III-B): the weight first decays
    // steeply per iteration while noise rows are being zeroed out, flattens
    // as the product absorbs pattern columns, then dives again once the
    // pattern is exhausted. Stop shortly after the second dive begins (the
    // best product is already recorded). Tiny weights make the ratio
    // meaningless, so flattening requires some mass left.
    if (!dive_detected && prev_weight > 0) {
      const double ratio = cur_weight / prev_weight;
      if (flattened && ratio <= options_.dive_ratio) {
        dive_detected = true;
        stop_reason = "dive";
        if (!options_.record_full_trajectory) break;
      } else if (ratio >= options_.flatten_ratio && cur_weight >= 8.0) {
        flattened = true;
      }
    }
    prev_weight = cur_weight;
    if (hopefuls.front().weight == 0) {
      stop_reason = "zero_weight";
      break;
    }
    // Pure-noise fast path: once the heaviest product is down to a handful
    // of rows without ever flattening, no later product can become
    // significant — products only lose weight.
    if (!options_.record_full_trajectory && !flattened &&
        hopefuls.front().weight < 4) {
      stop_reason = "noise_floor";
      break;
    }
  }

  detection.stop_iteration = best_iteration;
  report_stop(stop_reason);

  // Non-naturally-occurring gate (Fig 5 line 6) within the searched
  // submatrix, at the screened density.
  if (best_log_bound > std::log(options_.nno_epsilon)) {
    ObsCounter("detector.aligned.nno_rejected").Increment();
    return detection;
  }

  ObsCounter("detector.aligned.detections").Increment();
  detection.pattern_found = true;
  std::vector<std::size_t> set_rows;
  best_product.bits.AppendSetBits(&set_rows);
  detection.rows.assign(set_rows.begin(), set_rows.end());
  detection.columns.reserve(best_product.cols.size());
  for (std::uint32_t c : best_product.cols) {
    detection.columns.push_back(screened.original_ids[c]);
  }
  std::sort(detection.columns.begin(), detection.columns.end());
  return detection;
}

std::vector<AlignedDetection> AlignedDetector::DetectMultipleInMatrix(
    const BitMatrix& matrix, std::size_t n_prime,
    std::size_t max_patterns) const {
  std::vector<AlignedDetection> detections;
  BitMatrix working = matrix;
  for (std::size_t round = 0; round < max_patterns; ++round) {
    AlignedDetection detection = DetectInMatrix(working, n_prime);
    if (!detection.pattern_found) break;
    // Erase the found pattern's columns so the next round sees only what
    // remains.
    for (std::size_t c : detection.columns) {
      for (std::size_t r = 0; r < working.rows(); ++r) {
        working.row(r).Clear(c);
      }
    }
    detections.push_back(std::move(detection));
  }
  return detections;
}

AlignedDetection AlignedDetector::DetectInMatrix(const BitMatrix& matrix,
                                                 std::size_t n_prime) const {
  const ScreenedColumns screened = ScreenHeaviestColumns(matrix, n_prime);
  AlignedDetection detection = Detect(screened);
  if (!detection.pattern_found) return detection;

  // Fig 6 lines 10-14: scan every column outside S1 against the core.
  BitVector core_bits(matrix.rows());
  for (std::uint32_t r : detection.rows) core_bits.Set(r);
  const std::size_t core_weight = detection.rows.size();
  const std::size_t thresh =
      core_weight > options_.gamma ? core_weight - options_.gamma : 1;

  std::unordered_set<std::size_t> in_screen(screened.original_ids.begin(),
                                            screened.original_ids.end());
  // Common-1s with the core for every column in one pass over core rows.
  std::vector<std::uint32_t> common(matrix.cols(), 0);
  for (std::uint32_t r : detection.rows) {
    const BitVector& row = matrix.row(r);
    for (std::size_t w = 0; w < row.num_words(); ++w) {
      std::uint64_t word = row.words()[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        ++common[(w << 6) + static_cast<std::size_t>(bit)];
        word &= word - 1;
      }
    }
  }
  for (std::size_t c = 0; c < matrix.cols(); ++c) {
    if (common[c] >= thresh && !in_screen.contains(c)) {
      detection.columns.push_back(c);
    }
  }
  std::sort(detection.columns.begin(), detection.columns.end());
  return detection;
}

}  // namespace dcs
