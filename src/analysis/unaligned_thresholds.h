#ifndef DCS_ANALYSIS_UNALIGNED_THRESHOLDS_H_
#define DCS_ANALYSIS_UNALIGNED_THRESHOLDS_H_

#include <cstdint>
#include <vector>

namespace dcs {

/// Parameters of the unaligned non-naturally-occurring analysis
/// (Section IV-C, Eqs 2 and 3).
struct UnalignedNnoOptions {
  /// Number of graph vertices n (102,400 at paper scale).
  std::int64_t num_vertices = 102'400;
  /// Pattern-pair edge probability p2 (from UnalignedSignalModel, depends on
  /// the content's packet count g).
  double p2 = 0.1;
  /// Type-I bound: C(n,m) P[Binomial(m(m-1)/2, p1) > d] must be below this
  /// (the paper uses "very small (e.g. 10^-10)").
  double max_false_positive = 1e-10;
  /// Type-II requirement: P[Binomial(m(m-1)/2, p2) > d] must be at least
  /// this ("large enough (e.g. > 0.95)").
  double min_true_positive = 0.95;
  /// Candidate null edge probabilities p1 to co-tune with d. The paper found
  /// no analytical co-tuning and searches brute-force; an empty list uses a
  /// built-in logarithmic grid.
  std::vector<double> p1_grid;
  /// Upper bound on the m search.
  std::int64_t max_m = 4096;
};

/// Result of the co-tuning search at one m (or the overall minimum).
struct UnalignedNnoResult {
  /// Smallest cluster size m that satisfies both error bounds; -1 if none
  /// up to max_m.
  std::int64_t min_cluster_size = -1;
  /// The (p1, d) pair achieving it.
  double best_p1 = 0.0;
  std::int64_t best_d = 0;
  /// Achieved error levels at the optimum.
  double achieved_false_positive = 1.0;
  double achieved_true_positive = 0.0;
};

/// True when some (p1 in grid, d) makes a size-m cluster satisfy both
/// bounds; fills the best parameters found.
bool ClusterSizeIsSignificant(std::int64_t m, const UnalignedNnoOptions& opts,
                              UnalignedNnoResult* best);

/// Smallest significant m — one entry of Table II. Exponential + binary
/// search over m (feasibility is monotone in m).
UnalignedNnoResult MinNonNaturallyOccurringClusterSize(
    const UnalignedNnoOptions& opts);

/// Model-coupled variant: the lambda table's p_star determines *both* the
/// null edge probability p1 and the matched-pair exceedance q(g), so
/// co-tuning must recompute p2 for every candidate p1 (the paper's
/// brute-force search over the (p1, d) plane, Section IV-C). `opts.p2` is
/// ignored. `arrays` is the per-group array count (k = 10 in the paper).
class UnalignedSignalModel;
UnalignedNnoResult MinClusterSizeForContent(const UnalignedSignalModel& model,
                                            std::size_t content_packets,
                                            std::size_t arrays,
                                            const UnalignedNnoOptions& opts);

}  // namespace dcs

#endif  // DCS_ANALYSIS_UNALIGNED_THRESHOLDS_H_
