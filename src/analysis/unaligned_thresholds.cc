#include "analysis/unaligned_thresholds.h"

#include <cmath>

#include "common/logging.h"
#include "common/stats_math.h"
#include "analysis/lambda_table.h"
#include "analysis/unaligned_model.h"

namespace dcs {
namespace {

std::vector<double> DefaultP1Grid() {
  // Logarithmic sweep around the interesting region (1e-7 .. 1e-3); the
  // sweet spot the paper mentions always lands inside it at n ~ 1e5.
  std::vector<double> grid;
  for (double p1 = 1e-7; p1 <= 1.1e-3; p1 *= 1.7782794100389228) {
    grid.push_back(p1);  // 4 points per decade.
  }
  return grid;
}

}  // namespace

bool ClusterSizeIsSignificant(std::int64_t m, const UnalignedNnoOptions& opts,
                              UnalignedNnoResult* best) {
  DCS_CHECK(best != nullptr);
  if (m < 2) return false;
  const std::int64_t pairs = m * (m - 1) / 2;
  const double log_choose_nm = LogChoose(
      static_cast<double>(opts.num_vertices), static_cast<double>(m));
  const double log_fp_budget = std::log(opts.max_false_positive);
  const std::vector<double> grid =
      opts.p1_grid.empty() ? DefaultP1Grid() : opts.p1_grid;

  for (double p1 : grid) {
    // Smallest d with C(n,m) P[Bin(pairs, p1) > d] <= budget; the survival
    // function is decreasing in d, so binary search.
    std::int64_t lo = -1;
    std::int64_t hi = pairs;
    if (log_choose_nm + LogBinomSf(hi, pairs, p1) > log_fp_budget) continue;
    while (lo + 1 < hi) {
      const std::int64_t mid = lo + (hi - lo) / 2;
      if (log_choose_nm + LogBinomSf(mid, pairs, p1) <= log_fp_budget) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    const std::int64_t d = hi;
    const double true_positive = std::exp(LogBinomSf(d, pairs, opts.p2));
    if (true_positive >= opts.min_true_positive) {
      best->min_cluster_size = m;
      best->best_p1 = p1;
      best->best_d = d;
      best->achieved_false_positive =
          std::exp(log_choose_nm + LogBinomSf(d, pairs, p1));
      best->achieved_true_positive = true_positive;
      return true;
    }
  }
  return false;
}

UnalignedNnoResult MinNonNaturallyOccurringClusterSize(
    const UnalignedNnoOptions& opts) {
  UnalignedNnoResult result;
  // Exponential search for a feasible m, then binary search the frontier.
  std::int64_t hi = 2;
  UnalignedNnoResult scratch;
  while (hi <= opts.max_m && !ClusterSizeIsSignificant(hi, opts, &scratch)) {
    hi *= 2;
  }
  if (hi > opts.max_m) return result;  // Infeasible below max_m.
  std::int64_t lo = hi / 2;  // Infeasible (or 1).
  while (lo + 1 < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (ClusterSizeIsSignificant(mid, opts, &scratch)) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  DCS_CHECK(ClusterSizeIsSignificant(hi, opts, &result));
  return result;
}

UnalignedNnoResult MinClusterSizeForContent(const UnalignedSignalModel& model,
                                            std::size_t content_packets,
                                            std::size_t arrays,
                                            const UnalignedNnoOptions& opts) {
  // For each p1 the lambda table changes, which changes the matched-pair
  // exceedance and hence p2 — so run the frontier search once per candidate
  // p1 with a single-entry grid and take the best frontier.
  const std::vector<double> grid =
      opts.p1_grid.empty() ? DefaultP1Grid() : opts.p1_grid;
  UnalignedNnoResult best;
  for (double p1 : grid) {
    const double p_star = LambdaTable::PStarFromEdgeProb(p1, arrays);
    UnalignedNnoOptions single = opts;
    single.p1_grid = {p1};
    single.p2 = model.PatternEdgeProb(content_packets, p_star, p1);
    const UnalignedNnoResult result =
        MinNonNaturallyOccurringClusterSize(single);
    if (result.min_cluster_size < 0) continue;
    if (best.min_cluster_size < 0 ||
        result.min_cluster_size < best.min_cluster_size) {
      best = result;
    }
  }
  return best;
}

}  // namespace dcs
