#ifndef DCS_ANALYSIS_ALIGNED_DETECTOR_H_
#define DCS_ANALYSIS_ALIGNED_DETECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "analysis/analysis_context.h"
#include "analysis/weight_screen.h"

namespace dcs {

/// Tuning of the greedy ASID search (Figs 5 and 6).
struct AlignedDetectorOptions {
  /// "Hopefuls" kept after the 2-product pass. The paper keeps O(n) of the
  /// n(n-1)/2 pairs; with the default n' = 4000 screen this is n'.
  std::size_t first_iteration_hopefuls = 4000;
  /// Hopefuls kept in later iterations. Monte-Carlo shows O(n) is
  /// sufficient, not necessary (Section III-B); a smaller list here cuts the
  /// per-iteration cost with no measurable accuracy loss at our scales.
  std::size_t hopefuls = 1024;
  /// Upper bound on iterations — the paper's num_iterations = b + c.
  std::size_t max_iterations = 40;
  /// epsilon of the non-naturally-occurring gate (Section III-C).
  double nno_epsilon = 1e-3;
  /// Core-scan slack: columns with >= weight(core) - gamma common 1s join
  /// the pattern (Fig 6 line 12; "2 or 3 works almost 100% of the time").
  std::uint32_t gamma = 2;
  /// Ratio above which the weight-loss curve counts as flattened and below
  /// which (after flattening) the second exponential dive is declared; see
  /// the termination procedure of Section III-B and Fig 7. The dive ratio
  /// sits above the noise-phase decay (~0.55-0.75, inflated past 1/2 by
  /// max-selection among the hopefuls) and below the plateau (~0.9+).
  double flatten_ratio = 0.85;
  double dive_ratio = 0.80;
  /// When true, runs all max_iterations and records the full weight-loss
  /// trajectory (used to regenerate Fig 7); termination still reports the
  /// iteration the procedure would have chosen.
  bool record_full_trajectory = false;
};

/// Detector output.
struct AlignedDetection {
  /// Whether a non-naturally-occurring pattern was found.
  bool pattern_found = false;
  /// Rows of the detected core — the routers that saw the content.
  std::vector<std::uint32_t> rows;
  /// Original column ids of the detected pattern (core columns, plus scanned
  /// columns when expansion ran).
  std::vector<std::size_t> columns;
  /// Heaviest product weight after each iteration; index 0 is the 2-product
  /// pass (Fig 7's y-axis series).
  std::vector<std::size_t> weight_trajectory;
  /// Iteration (b') at which the termination procedure stopped.
  std::size_t stop_iteration = 0;
};

/// \brief Greedy ASID detector for the aligned case.
///
/// Detect() runs the k-product "hopefuls" iteration of Fig 5 over a set of
/// columns — the naive algorithm when given all columns, the refined
/// algorithm's core search when given the heaviest-n' screen. The weight
/// trajectory termination procedure decides when the noise is gone (see
/// Fig 7); the result passes the non-naturally-occurring gate before being
/// reported. DetectInMatrix() adds the refined algorithm's final scan that
/// grows the core across the unscreened columns (Fig 6 lines 10-14).
///
/// When constructed with an AnalysisContext carrying a pool, the hot passes
/// run sharded on it (Section IV-D: spread the analysis over many CPUs):
/// the pair pass and each hopefuls extension keep per-shard bounded heaps
/// merged under a total order (weight desc, then column ids asc), and the
/// final core scan shards the unscreened columns. Every merge is
/// shard-order-invariant, so the detection — rows, columns, and the full
/// weight trajectory — is bit-identical at any thread count, including the
/// serial (null pool) engine.
class AlignedDetector {
 public:
  explicit AlignedDetector(const AlignedDetectorOptions& options);
  AlignedDetector(const AlignedDetectorOptions& options,
                  const AnalysisContext& context);

  /// Core search over the given (typically screened) columns.
  AlignedDetection Detect(const ScreenedColumns& screened) const;

  /// Full refined pipeline: screen to n_prime columns, find the core, then
  /// scan every remaining column against the core.
  ///
  /// `column_weights`, when non-null, must equal matrix.ColumnWeights()
  /// (e.g. an IncrementalColumnWeights maintained while the rows arrived);
  /// the weight screen then starts hot instead of rescanning all columns.
  /// The detection is bit-identical either way (see ScreenHeaviestColumns).
  AlignedDetection DetectInMatrix(
      const BitMatrix& matrix, std::size_t n_prime,
      const std::vector<std::uint32_t>* column_weights = nullptr) const;

  /// Iterated detection for multiple common contents in one epoch
  /// (Section II-D): detect, erase the found pattern's columns from a
  /// working copy, repeat until nothing significant remains or
  /// `max_patterns` is hit. Patterns are returned in detection order.
  /// `column_weights` (same contract as DetectInMatrix) only accelerates
  /// the first round: erasing a pattern invalidates the counts, so later
  /// rounds rescan.
  std::vector<AlignedDetection> DetectMultipleInMatrix(
      const BitMatrix& matrix, std::size_t n_prime, std::size_t max_patterns,
      const std::vector<std::uint32_t>* column_weights = nullptr) const;

  const AlignedDetectorOptions& options() const { return options_; }
  const AnalysisContext& context() const { return context_; }

 private:
  AlignedDetectorOptions options_;
  AnalysisContext context_;
};

}  // namespace dcs

#endif  // DCS_ANALYSIS_ALIGNED_DETECTOR_H_
