#ifndef DCS_ANALYSIS_UNALIGNED_DETECTOR_H_
#define DCS_ANALYSIS_UNALIGNED_DETECTOR_H_

#include <cstddef>
#include <vector>

#include "analysis/analysis_context.h"
#include "graph/graph.h"

namespace dcs {

/// Tuning of the unaligned-case pattern finding (Section IV-B, Fig 10).
struct UnalignedDetectorOptions {
  /// Core size beta: peeling stops when this many vertices remain. The paper
  /// configures it by Monte-Carlo so that, above the detectable threshold,
  /// the core is mostly pattern vertices.
  std::size_t beta = 30;
  /// Step 3 survival rule: a vertex outside the core must have at least d
  /// edges into the core to stay.
  std::size_t expand_min_edges = 3;
  /// Core size for the second FindCore pass over the surviving graph H
  /// (0 = reuse beta).
  std::size_t second_beta = 0;
};

/// Output of the three-step detection procedure.
struct UnalignedDetection {
  /// Step 2's core, V_core.
  std::vector<Graph::VertexId> core;
  /// Step 3's second core, V_2nd_core.
  std::vector<Graph::VertexId> second_core;
  /// Union of the two cores — the groups reported as having seen the common
  /// content.
  std::vector<Graph::VertexId> detected;
};

/// \brief Steps 2 and 3 of the unaligned detection algorithm.
///
/// Step 2 peels minimum-degree vertices until beta remain (FindCore, proven
/// stochastically optimal in the paper's appendix). Step 3 keeps only
/// outside vertices with >= d edges into the core, re-runs FindCore on the
/// graph they induce, and reports the union of the two cores. Requires a
/// finalized graph.
///
/// With a pool in `context`, both FindCore passes and the survivor scan run
/// sharded with total-order merges (docs/PARALLELISM.md); the detection is
/// bit-identical at any thread count, including a null pool.
UnalignedDetection DetectUnalignedPattern(const Graph& graph,
                                          const UnalignedDetectorOptions& options,
                                          const AnalysisContext& context);

/// Serial-context convenience overload.
inline UnalignedDetection DetectUnalignedPattern(
    const Graph& graph, const UnalignedDetectorOptions& options) {
  return DetectUnalignedPattern(graph, options, AnalysisContext{});
}

/// Options for iterated multi-content detection.
struct MultiPatternOptions {
  UnalignedDetectorOptions detector;
  /// Stop after this many patterns.
  std::size_t max_patterns = 4;
  /// Significance gate between rounds: min-degree peeling always returns
  /// *some* core, so a detected set S only counts as a pattern when the
  /// union bound C(n,|S|) P[Binomial(|S|(|S|-1)/2, p_background) >= E(S)]
  /// (the paper's Eq 2, which prices in the selection of the densest
  /// subset) is below this level. Pure-noise cores score ~e^{+40}; genuine
  /// patterns score ~e^{-1000}.
  double significance_alpha = 1e-6;
  /// Background (null) edge probability of the graph, used by the gate.
  double p_background = 1e-4;
};

/// \brief Finds several common contents in one epoch (Section II-D).
///
/// FindCore is winner-take-all: with two contents present, the min-degree
/// core converges on the stronger one and the weaker is peeled away. This
/// routine therefore iterates: detect, verify the detected set is denser
/// than chance, delete its vertices from the graph, repeat. Detections are
/// returned strongest-first; vertices refer to the original graph. The
/// context's pool reaches every inner detection (see DetectUnalignedPattern).
std::vector<UnalignedDetection> DetectMultipleUnalignedPatterns(
    const Graph& graph, const MultiPatternOptions& options,
    const AnalysisContext& context);

/// Serial-context convenience overload.
inline std::vector<UnalignedDetection> DetectMultipleUnalignedPatterns(
    const Graph& graph, const MultiPatternOptions& options) {
  return DetectMultipleUnalignedPatterns(graph, options, AnalysisContext{});
}

/// Scores a detection against ground truth: fraction of reported vertices
/// that are not in `truth` (false positive rate of the report) and fraction
/// of `truth` missed (false negative rate). Both vectors must be sorted.
struct DetectionScore {
  double false_positive = 0.0;
  double false_negative = 0.0;
  std::size_t true_positives = 0;
};
DetectionScore ScoreDetection(const std::vector<Graph::VertexId>& detected,
                              const std::vector<Graph::VertexId>& truth);

}  // namespace dcs

#endif  // DCS_ANALYSIS_UNALIGNED_DETECTOR_H_
