#ifndef DCS_ANALYSIS_ER_TEST_H_
#define DCS_ANALYSIS_ER_TEST_H_

#include <cstddef>

#include "graph/graph.h"

namespace dcs {

/// Result of the Erdős–Rényi statistical test (Section IV-B).
struct ErTestResult {
  /// Size of the largest connected component — the test statistic.
  std::size_t largest_component = 0;
  /// Whether the null hypothesis (pure G(n, p1)) is rejected, i.e. common
  /// content is declared present.
  bool pattern_detected = false;
};

/// \brief The paper's phase-transition test.
///
/// With the null edge probability tuned below 1/n, a pure random graph's
/// largest component is O(log n); correlated groups ("preferential
/// attachment") merge components into one far larger than that. The test
/// simply compares the largest component against `threshold` (the paper uses
/// 100 at n = 102,400).
ErTestResult RunErTest(const Graph& graph, std::size_t threshold);

/// A conservative default threshold c * ln(n): well above the O(log n) null
/// components yet far below the pattern-merged component. c = 10 reproduces
/// the paper's choice of 100 at n = 102,400 (ln n ≈ 11.5).
std::size_t DefaultErTestThreshold(std::size_t num_vertices);

}  // namespace dcs

#endif  // DCS_ANALYSIS_ER_TEST_H_
