#include "analysis/synthetic_matrix.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/distributions.h"
#include "common/logging.h"
#include "common/stats_math.h"

namespace dcs {
namespace {

// Uniform k-subset of `pool` (by value) via partial Fisher-Yates; O(|pool|).
// `pool` is used as scratch and restored to ascending order afterwards is
// NOT guaranteed — callers pass a fresh copy or don't care about order.
void SampleSubsetInto(std::vector<std::uint32_t>* pool, std::size_t k,
                      Rng* rng, BitVector* out) {
  DCS_CHECK(k <= pool->size());
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + rng->UniformInt(pool->size() - i);
    std::swap((*pool)[i], (*pool)[j]);
    out->Set((*pool)[i]);
  }
}

struct WeightedColumn {
  std::uint32_t weight;
  bool is_pattern;
};

}  // namespace

SyntheticScreened SampleScreenedAligned(const SyntheticAlignedOptions& options,
                                        Rng* rng) {
  DCS_CHECK(rng != nullptr);
  const std::size_t m = options.m;
  const std::size_t n = options.n;
  const std::size_t a = options.pattern_rows;
  const std::size_t b = options.pattern_cols;
  DCS_CHECK(a <= m);
  DCS_CHECK(b <= n);
  const std::size_t n_prime = std::min(options.n_prime, n);

  SyntheticScreened result;

  // Ground-truth pattern rows.
  if (a > 0) {
    for (std::uint64_t v : SampleWithoutReplacement(rng, m, a)) {
      result.pattern_rows.push_back(static_cast<std::uint32_t>(v));
    }
    std::sort(result.pattern_rows.begin(), result.pattern_rows.end());
  }

  // Planted column weights: a forced 1s plus Bernoulli(1/2) noise elsewhere.
  std::vector<std::uint32_t> pattern_weights(b);
  for (std::size_t j = 0; j < b; ++j) {
    pattern_weights[j] = static_cast<std::uint32_t>(
        static_cast<std::int64_t>(a) +
        SampleBinomial(rng, static_cast<std::int64_t>(m - a), 0.5));
  }
  std::sort(pattern_weights.rbegin(), pattern_weights.rend());

  // Noise weight pmf/cdf table for Binomial(m, 1/2), linear domain.
  std::vector<double> pmf(m + 1);
  std::vector<double> cdf(m + 1);
  double acc = 0.0;
  for (std::size_t w = 0; w <= m; ++w) {
    pmf[w] = std::exp(LogBinomPmf(static_cast<std::int64_t>(w),
                                  static_cast<std::int64_t>(m), 0.5));
    acc += pmf[w];
    cdf[w] = acc;
  }

  // Sequential multinomial: noise-column counts per weight, heaviest first,
  // stopping once the screen is guaranteed full.
  std::vector<WeightedColumn> selected;  // Descending weight.
  selected.reserve(n_prime + m);
  std::int64_t noise_remaining = static_cast<std::int64_t>(n - b);
  std::size_t pattern_cursor = 0;  // Into pattern_weights (descending).
  std::size_t taken = 0;
  std::uint32_t cutoff_weight = 0;
  std::size_t need_at_cutoff = 0;
  std::size_t noise_at_cutoff = 0;
  std::size_t pattern_at_cutoff = 0;

  for (std::int64_t w = static_cast<std::int64_t>(m); w >= 0; --w) {
    const std::size_t wu = static_cast<std::size_t>(w);
    std::int64_t noise_count = 0;
    if (noise_remaining > 0 && pmf[wu] > 0.0) {
      const double cond_p = cdf[wu] > 0.0 ? std::min(1.0, pmf[wu] / cdf[wu])
                                          : 1.0;
      noise_count = SampleBinomial(rng, noise_remaining, cond_p);
      noise_remaining -= noise_count;
    }
    std::size_t pattern_count = 0;
    while (pattern_cursor < pattern_weights.size() &&
           pattern_weights[pattern_cursor] == static_cast<std::uint32_t>(w)) {
      ++pattern_count;
      ++pattern_cursor;
    }
    const std::size_t here = static_cast<std::size_t>(noise_count) +
                             pattern_count;
    if (here == 0) continue;
    if (taken + here <= n_prime) {
      for (std::size_t i = 0; i < pattern_count; ++i) {
        selected.push_back({static_cast<std::uint32_t>(w), true});
      }
      for (std::int64_t i = 0; i < noise_count; ++i) {
        selected.push_back({static_cast<std::uint32_t>(w), false});
      }
      taken += here;
      if (taken == n_prime) break;
    } else {
      // Tie-break at the cutoff weight: the real screen breaks ties by
      // column id, and ids are exchangeable, so a uniform choice among the
      // tied columns is exact. Number of pattern columns among the chosen
      // ties is hypergeometric.
      cutoff_weight = static_cast<std::uint32_t>(w);
      need_at_cutoff = n_prime - taken;
      noise_at_cutoff = static_cast<std::size_t>(noise_count);
      pattern_at_cutoff = pattern_count;
      const std::int64_t pattern_chosen = SampleHypergeometric(
          rng, static_cast<std::int64_t>(noise_at_cutoff + pattern_at_cutoff),
          static_cast<std::int64_t>(pattern_at_cutoff),
          static_cast<std::int64_t>(need_at_cutoff));
      for (std::int64_t i = 0; i < pattern_chosen; ++i) {
        selected.push_back({cutoff_weight, true});
      }
      for (std::size_t i = 0;
           i < need_at_cutoff - static_cast<std::size_t>(pattern_chosen);
           ++i) {
        selected.push_back({cutoff_weight, false});
      }
      taken = n_prime;
      break;
    }
  }

  // Materialize bits for the selected columns only.
  std::vector<std::uint32_t> all_rows(m);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  std::vector<std::uint32_t> non_pattern_rows;
  if (a > 0) {
    non_pattern_rows.reserve(m - a);
    std::size_t pat_idx = 0;
    for (std::uint32_t r = 0; r < m; ++r) {
      if (pat_idx < result.pattern_rows.size() &&
          result.pattern_rows[pat_idx] == r) {
        ++pat_idx;
      } else {
        non_pattern_rows.push_back(r);
      }
    }
  }

  ScreenedColumns& screened = result.screened;
  screened.num_rows = m;
  screened.num_source_columns = n;
  screened.columns.reserve(selected.size());
  screened.weights.reserve(selected.size());
  screened.original_ids.reserve(selected.size());
  result.is_pattern_column.reserve(selected.size());

  std::vector<std::uint32_t> scratch;
  std::size_t next_pattern_id = 0;  // Synthetic ids: pattern cols get [0,b).
  std::size_t next_noise_id = b;
  for (const WeightedColumn& col : selected) {
    BitVector bits(m);
    if (col.is_pattern) {
      for (std::uint32_t r : result.pattern_rows) bits.Set(r);
      scratch = non_pattern_rows;
      SampleSubsetInto(&scratch, col.weight - a, rng, &bits);
      screened.original_ids.push_back(next_pattern_id++);
      ++result.pattern_columns_in_screen;
    } else {
      scratch = all_rows;
      SampleSubsetInto(&scratch, col.weight, rng, &bits);
      screened.original_ids.push_back(next_noise_id++);
    }
    screened.columns.push_back(std::move(bits));
    screened.weights.push_back(col.weight);
    result.is_pattern_column.push_back(col.is_pattern ? 1 : 0);
  }
  return result;
}

BitMatrix SampleLiteralAligned(const SyntheticAlignedOptions& options,
                               Rng* rng,
                               std::vector<std::uint32_t>* pattern_rows,
                               std::vector<std::size_t>* pattern_cols) {
  DCS_CHECK(rng != nullptr);
  DCS_CHECK(pattern_rows != nullptr && pattern_cols != nullptr);
  pattern_rows->clear();
  pattern_cols->clear();
  BitMatrix matrix(options.m, options.n);
  for (std::size_t r = 0; r < options.m; ++r) {
    std::uint64_t* words = matrix.row(r).mutable_words();
    const std::size_t num_words = matrix.row(r).num_words();
    for (std::size_t w = 0; w < num_words; ++w) words[w] = rng->Next();
    // Zero padding bits past n so weights are exact.
    const std::size_t tail_bits = options.n & 63;
    if (tail_bits != 0) {
      words[num_words - 1] &= (1ULL << tail_bits) - 1;
    }
  }
  if (options.pattern_rows > 0 && options.pattern_cols > 0) {
    for (std::uint64_t v :
         SampleWithoutReplacement(rng, options.m, options.pattern_rows)) {
      pattern_rows->push_back(static_cast<std::uint32_t>(v));
    }
    std::sort(pattern_rows->begin(), pattern_rows->end());
    for (std::uint64_t c :
         SampleWithoutReplacement(rng, options.n, options.pattern_cols)) {
      pattern_cols->push_back(static_cast<std::size_t>(c));
    }
    std::sort(pattern_cols->begin(), pattern_cols->end());
    for (std::uint32_t r : *pattern_rows) {
      for (std::size_t c : *pattern_cols) matrix.Set(r, c);
    }
  }
  return matrix;
}

}  // namespace dcs
