#include "analysis/cluster_separation.h"

#include <algorithm>
#include <unordered_map>

#include "common/logging.h"
#include "graph/union_find.h"

namespace dcs {

std::vector<std::vector<Graph::VertexId>> SeparateClusters(
    const Graph& graph, const std::vector<Graph::VertexId>& detected,
    const ClusterSeparationOptions& options) {
  DCS_CHECK(graph.finalized());
  DCS_CHECK(std::is_sorted(detected.begin(), detected.end()));

  // Union-find over the induced subgraph only.
  std::unordered_map<Graph::VertexId, std::uint32_t> index_of;
  index_of.reserve(detected.size());
  for (std::uint32_t i = 0; i < detected.size(); ++i) {
    index_of.emplace(detected[i], i);
  }
  // Detected-neighbor lists (indices into `detected`), ascending.
  std::vector<std::vector<std::uint32_t>> adj(detected.size());
  for (std::uint32_t i = 0; i < detected.size(); ++i) {
    for (Graph::VertexId w : graph.neighbors(detected[i])) {
      const auto it = index_of.find(w);
      if (it != index_of.end()) adj[i].push_back(it->second);
    }
  }

  UnionFind uf(detected.size());
  for (std::uint32_t i = 0; i < detected.size(); ++i) {
    for (std::uint32_t j : adj[i]) {
      if (j <= i) continue;
      if (options.min_common_neighbors > 0) {
        // Triangle support: count common detected neighbors.
        std::size_t common = 0;
        auto a = adj[i].begin();
        auto b = adj[j].begin();
        while (a != adj[i].end() && b != adj[j].end()) {
          if (*a < *b) {
            ++a;
          } else if (*b < *a) {
            ++b;
          } else {
            ++common;
            ++a;
            ++b;
          }
        }
        if (common < options.min_common_neighbors) continue;
      }
      uf.Union(i, j);
    }
  }

  // Roots are indices into `detected`, so a plain vector groups members in
  // deterministic (ascending-root) order; most slots stay empty.
  std::vector<std::vector<Graph::VertexId>> by_root(detected.size());
  for (std::uint32_t i = 0; i < detected.size(); ++i) {
    by_root[uf.Find(i)].push_back(detected[i]);
  }
  std::vector<std::vector<Graph::VertexId>> clusters;
  for (auto& members : by_root) {
    if (members.size() >= options.min_cluster_size) {
      std::sort(members.begin(), members.end());
      clusters.push_back(std::move(members));
    }
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() > b.size();
              return a < b;  // Deterministic tie-break.
            });
  return clusters;
}

}  // namespace dcs
