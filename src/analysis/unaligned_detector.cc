#include "analysis/unaligned_detector.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "common/logging.h"
#include "common/stats_math.h"
#include "graph/core_decomposition.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {

UnalignedDetection DetectUnalignedPattern(const Graph& graph,
                                          const UnalignedDetectorOptions& options,
                                          const AnalysisContext& context) {
  DCS_CHECK(graph.finalized());
  ThreadPool* pool = context.pool;
  UnalignedDetection detection;

  // Step 2: find the core by min-degree peeling.
  PeelResult peel;
  {
    ScopedStageTimer peel_timer("find_core");
    peel = FindCore(graph, options.beta, pool);
  }
  detection.core = peel.core;

  // Step 3: survivors are outside vertices with >= d edges into the core.
  // The per-vertex test only reads the graph and the core flags, so shards
  // are independent; contiguous ascending shards concatenated in shard
  // order give the same ascending survivor list as the serial loop.
  std::vector<char> in_core(graph.num_vertices(), 0);
  for (Graph::VertexId v : detection.core) in_core[v] = 1;

  auto survives = [&](std::size_t v) {
    if (in_core[v]) return false;
    std::size_t edges_into_core = 0;
    for (Graph::VertexId w :
         graph.neighbors(static_cast<Graph::VertexId>(v))) {
      if (in_core[w]) ++edges_into_core;
    }
    return edges_into_core >= options.expand_min_edges;
  };
  std::vector<Graph::VertexId> survivors;
  if (pool != nullptr) {
    const std::vector<ShardRange> shards =
        pool->ShardsFor(graph.num_vertices());
    std::vector<std::vector<Graph::VertexId>> shard_survivors(shards.size());
    pool->RunShards(shards, [&](const ShardRange& shard) {
      for (std::size_t v = shard.begin; v < shard.end; ++v) {
        if (survives(v)) {
          shard_survivors[shard.index].push_back(
              static_cast<Graph::VertexId>(v));
        }
      }
    });
    for (const std::vector<Graph::VertexId>& part : shard_survivors) {
      survivors.insert(survivors.end(), part.begin(), part.end());
    }
  } else {
    for (std::size_t v = 0; v < graph.num_vertices(); ++v) {
      if (survives(v)) survivors.push_back(static_cast<Graph::VertexId>(v));
    }
  }

  // Induce H on the survivors and find a second core in it.
  if (!survivors.empty()) {
    std::unordered_map<Graph::VertexId, Graph::VertexId> remap;
    remap.reserve(survivors.size());
    for (std::size_t i = 0; i < survivors.size(); ++i) {
      remap.emplace(survivors[i], static_cast<Graph::VertexId>(i));
    }
    Graph h(survivors.size());
    for (Graph::VertexId v : survivors) {
      for (Graph::VertexId w : graph.neighbors(v)) {
        if (w <= v) continue;  // Each undirected edge once.
        const auto it = remap.find(w);
        if (it != remap.end()) h.AddEdge(remap[v], it->second);
      }
    }
    h.Finalize();
    const std::size_t second_beta =
        options.second_beta > 0 ? options.second_beta : options.beta;
    PeelResult second = FindCore(h, second_beta, pool);
    detection.second_core.reserve(second.core.size());
    for (Graph::VertexId v : second.core) {
      detection.second_core.push_back(survivors[v]);
    }
    std::sort(detection.second_core.begin(), detection.second_core.end());
  }

  detection.detected = detection.core;
  detection.detected.insert(detection.detected.end(),
                            detection.second_core.begin(),
                            detection.second_core.end());
  std::sort(detection.detected.begin(), detection.detected.end());
  detection.detected.erase(
      std::unique(detection.detected.begin(), detection.detected.end()),
      detection.detected.end());
  if (ObsEnabled()) {
    ObsCounter("detector.unaligned.runs").Increment();
    ObsCounter("detector.unaligned.vertices_peeled")
        .Add(peel.removal_order.size());
    ObsCounter("unaligned.peel_waves").Add(peel.waves);
    ObsCounter("unaligned.peel_tail_removals").Add(peel.tail_removals);
    ObsCounter("detector.unaligned.survivors").Add(survivors.size());
    ObsCounter("detector.unaligned.second_core_vertices")
        .Add(detection.second_core.size());
    ObsCounter("detector.unaligned.detected_vertices")
        .Add(detection.detected.size());
    ObsGauge("detector.unaligned.core_size")
        .Set(static_cast<double>(detection.core.size()));
  }
  return detection;
}

namespace {

// Number of edges of `graph` with both endpoints in sorted `vertices`.
std::size_t InducedEdgeCount(const Graph& graph,
                             const std::vector<Graph::VertexId>& vertices) {
  std::size_t count = 0;
  for (Graph::VertexId v : vertices) {
    for (Graph::VertexId w : graph.neighbors(v)) {
      if (w > v &&
          std::binary_search(vertices.begin(), vertices.end(), w)) {
        ++count;
      }
    }
  }
  return count;
}

// Induced subgraph on the complement of `removed` (sorted), with
// `mapping[new_id] = old_id`.
Graph InducedComplement(const Graph& graph,
                        const std::vector<Graph::VertexId>& removed,
                        std::vector<Graph::VertexId>* mapping) {
  mapping->clear();
  std::vector<std::uint32_t> new_id(graph.num_vertices(), UINT32_MAX);
  for (Graph::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (!std::binary_search(removed.begin(), removed.end(), v)) {
      new_id[v] = static_cast<std::uint32_t>(mapping->size());
      mapping->push_back(v);
    }
  }
  Graph sub(mapping->size());
  for (const auto& [u, v] : graph.edges()) {
    if (new_id[u] != UINT32_MAX && new_id[v] != UINT32_MAX) {
      sub.AddEdge(new_id[u], new_id[v]);
    }
  }
  sub.Finalize();
  return sub;
}

}  // namespace

std::vector<UnalignedDetection> DetectMultipleUnalignedPatterns(
    const Graph& graph, const MultiPatternOptions& options,
    const AnalysisContext& context) {
  DCS_CHECK(graph.finalized());
  std::vector<UnalignedDetection> detections;
  // Vertices removed so far (original ids), sorted.
  std::vector<Graph::VertexId> removed;
  const Graph* current = &graph;
  Graph working(0);
  std::vector<Graph::VertexId> mapping;  // current id -> original id.

  for (std::size_t round = 0; round < options.max_patterns; ++round) {
    UnalignedDetection detection =
        DetectUnalignedPattern(*current, options.detector, context);
    if (detection.detected.size() < 2) break;

    // Significance gate (Eq 2): even the densest size-m subset of a pure
    // null graph must beat this bound with probability <= alpha.
    const std::size_t edges = InducedEdgeCount(*current, detection.detected);
    const auto m = static_cast<std::int64_t>(detection.detected.size());
    const std::int64_t pairs = m * (m - 1) / 2;
    const double log_fp =
        LogChoose(static_cast<double>(current->num_vertices()),
                  static_cast<double>(m)) +
        LogBinomSf(static_cast<std::int64_t>(edges) - 1, pairs,
                   options.p_background);
    if (log_fp > std::log(options.significance_alpha)) break;

    // Map back to original ids (round 0 is already in original ids).
    if (round > 0) {
      auto remap = [&](std::vector<Graph::VertexId>* ids) {
        for (Graph::VertexId& v : *ids) v = mapping[v];
        std::sort(ids->begin(), ids->end());
      };
      remap(&detection.core);
      remap(&detection.second_core);
      remap(&detection.detected);
    }
    removed.insert(removed.end(), detection.detected.begin(),
                   detection.detected.end());
    std::sort(removed.begin(), removed.end());
    detections.push_back(std::move(detection));

    working = InducedComplement(graph, removed, &mapping);
    current = &working;
  }
  return detections;
}

DetectionScore ScoreDetection(const std::vector<Graph::VertexId>& detected,
                              const std::vector<Graph::VertexId>& truth) {
  DCS_CHECK(std::is_sorted(detected.begin(), detected.end()));
  DCS_CHECK(std::is_sorted(truth.begin(), truth.end()));
  DetectionScore score;
  std::vector<Graph::VertexId> hits;
  std::set_intersection(detected.begin(), detected.end(), truth.begin(),
                        truth.end(), std::back_inserter(hits));
  score.true_positives = hits.size();
  score.false_positive =
      detected.empty()
          ? 0.0
          : static_cast<double>(detected.size() - hits.size()) /
                static_cast<double>(detected.size());
  score.false_negative =
      truth.empty() ? 0.0
                    : static_cast<double>(truth.size() - hits.size()) /
                          static_cast<double>(truth.size());
  return score;
}

}  // namespace dcs
