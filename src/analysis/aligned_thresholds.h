#ifndef DCS_ANALYSIS_ALIGNED_THRESHOLDS_H_
#define DCS_ANALYSIS_ALIGNED_THRESHOLDS_H_

#include <cstdint>

namespace dcs {

/// \brief Natural-occurrence and detectability analysis for the aligned case
/// (Sections III-C and V-A.2).
///
/// All quantities are for an m x n 0/1 matrix whose noise entries are
/// Bernoulli(1/2) and a candidate all-1 submatrix of a rows x b columns.

/// log of the Markov bound C(m,a) C(n,b) 2^{-ab} on the probability that an
/// a x b all-1 submatrix occurs naturally (Eq 1; the paper prints the
/// binomials with swapped arguments — rows pair with `a`, columns with `b`).
double LogNaturalOccurrenceBound(std::int64_t m, std::int64_t n,
                                 std::int64_t a, std::int64_t b);

/// Density-aware generalization: noise entries are Bernoulli(density)
/// instead of Bernoulli(1/2). The weight screen hands the detector columns
/// whose density is well above 1/2 (they were selected for weight), so its
/// significance gate must use the screened density or it under-counts
/// natural occurrences.
double LogNaturalOccurrenceBoundDensity(std::int64_t m, std::int64_t n,
                                        std::int64_t a, std::int64_t b,
                                        double density);

/// True when the bound is at most `epsilon` — the paper's
/// "non-naturally-occurring" test used by the detectors' output gate.
bool IsNonNaturallyOccurring(std::int64_t m, std::int64_t n, std::int64_t a,
                             std::int64_t b, double epsilon);

/// Smallest b such that an a x b pattern is non-naturally-occurring, or -1
/// when even b = n is naturally occurring. This generates the lower curve of
/// Fig 12.
std::int64_t MinNonNaturallyOccurringB(std::int64_t m, std::int64_t n,
                                       std::int64_t a, double epsilon);

/// Outcome of the Section V-A.2 screening analysis for one (a, b) point.
struct DetectabilityAnalysis {
  /// Column-weight threshold t used for screening ("550" in the paper's
  /// worked example).
  std::int64_t weight_threshold = 0;
  /// Expected number of noise columns heavier than t (must stay below
  /// n_prime or the pattern is squeezed out).
  double expected_noise_columns = 0.0;
  /// Probability that one pattern column survives the screen:
  /// P[a + Binomial(m-a, 1/2) > t] (the paper's 0.55).
  double pattern_survival_prob = 0.0;
  /// Smallest core width l such that an a x l submatrix is
  /// non-naturally-occurring within the screened m x n_prime matrix (the
  /// paper's 8).
  std::int64_t min_core_columns = 0;
  /// P[at least min_core_columns of the b pattern columns survive] — the
  /// detection probability (the paper's 0.988 at (100, 30)).
  double detection_prob = 0.0;
};

/// Parameters of the screening analysis.
struct DetectabilityOptions {
  std::int64_t n_prime = 4000;  ///< Screened submatrix width (Theorem 2).
  double epsilon = 1e-3;        ///< NNO threshold inside the submatrix.
  /// The screen keeps expected noise below this fraction of n_prime
  /// (2900/4000 in the paper's example).
  double noise_budget_fraction = 0.75;
};

/// Evaluates detectability of an a x b pattern in an m x n matrix using the
/// weight threshold that best fits the noise budget.
DetectabilityAnalysis AnalyzeDetectability(std::int64_t m, std::int64_t n,
                                           std::int64_t a, std::int64_t b,
                                           const DetectabilityOptions& opts);

/// Smallest b whose detection probability reaches `target_prob`, or -1 if
/// none does below `max_b`. Generates the upper curve of Fig 12.
std::int64_t DetectableThresholdB(std::int64_t m, std::int64_t n,
                                  std::int64_t a, double target_prob,
                                  std::int64_t max_b,
                                  const DetectabilityOptions& opts);

}  // namespace dcs

#endif  // DCS_ANALYSIS_ALIGNED_THRESHOLDS_H_
