#include "analysis/incremental_weights.h"

#include <algorithm>

#include "common/bit_kernels.h"
#include "common/logging.h"

namespace dcs {

void IncrementalColumnWeights::Reset() {
  num_rows_ = 0;
  num_cols_ = 0;
  std::fill(weights_.begin(), weights_.end(), 0u);
  weights_.clear();
}

void IncrementalColumnWeights::AddRow(const BitVector& row) {
  if (num_cols_ == 0 && num_rows_ == 0) {
    num_cols_ = row.size();
    weights_.assign(num_cols_, 0u);
  }
  DCS_CHECK(row.size() == num_cols_)
      << "row width " << row.size() << " disagrees with accumulated width "
      << num_cols_;
  if (num_cols_ == 0) {
    ++num_rows_;
    return;
  }
  // Padding bits past the logical size are zero (the BitVector invariant),
  // so the kernel never writes past weights_[num_cols_ - 1].
  const std::uint64_t* words = row.words();
  AccumulateColumnCounts(&words, 1, 0, row.num_words(), weights_.data());
  ++num_rows_;
}

}  // namespace dcs
