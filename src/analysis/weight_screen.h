#ifndef DCS_ANALYSIS_WEIGHT_SCREEN_H_
#define DCS_ANALYSIS_WEIGHT_SCREEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "common/bit_vector.h"

namespace dcs {

/// Screened view of a matrix: the n' heaviest columns plus their identities,
/// the input to the refined detector (Fig 6, line "S1 := the set of heaviest
/// n' columns").
struct ScreenedColumns {
  /// The selected columns as bit vectors of length rows().
  std::vector<BitVector> columns;
  /// Original matrix column index of each selected column.
  std::vector<std::size_t> original_ids;
  /// Weight of each selected column.
  std::vector<std::uint32_t> weights;
  /// Number of rows in the source matrix.
  std::size_t num_rows = 0;
  /// Number of columns in the source matrix (before screening).
  std::size_t num_source_columns = 0;
};

/// Selects the `n_prime` heaviest columns of `matrix` (ties broken by lower
/// column id). One pass for the weights plus one pass to extract the chosen
/// columns — no transpose of the full matrix.
ScreenedColumns ScreenHeaviestColumns(const BitMatrix& matrix,
                                      std::size_t n_prime);

/// Selects the indices of the `k` largest values (ties by lower index),
/// returned in descending value order. Helper shared by the screening paths.
std::vector<std::size_t> TopKIndices(const std::vector<std::uint32_t>& values,
                                     std::size_t k);

}  // namespace dcs

#endif  // DCS_ANALYSIS_WEIGHT_SCREEN_H_
