#ifndef DCS_ANALYSIS_WEIGHT_SCREEN_H_
#define DCS_ANALYSIS_WEIGHT_SCREEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "common/bit_vector.h"
#include "common/thread_pool.h"

namespace dcs {

/// Screened view of a matrix: the n' heaviest columns plus their identities,
/// the input to the refined detector (Fig 6, line "S1 := the set of heaviest
/// n' columns").
struct ScreenedColumns {
  /// The selected columns as bit vectors of length rows().
  std::vector<BitVector> columns;
  /// Original matrix column index of each selected column.
  std::vector<std::size_t> original_ids;
  /// Weight of each selected column.
  std::vector<std::uint32_t> weights;
  /// Number of rows in the source matrix.
  std::size_t num_rows = 0;
  /// Number of columns in the source matrix (before screening).
  std::size_t num_source_columns = 0;
};

/// Selects the `n_prime` heaviest columns of `matrix` (ties broken by lower
/// column id). One pass for the weights plus one pass to extract the chosen
/// columns — no transpose of the full matrix.
///
/// With a pool, the weight accumulation and per-shard top-k are sharded over
/// word-aligned column slices and the extraction over the selected columns;
/// the shard candidates merge under the same (weight desc, id asc) total
/// order the serial path uses, so the result is bit-identical at any thread
/// count (and to pool == nullptr).
///
/// `precomputed_weights`, when non-null, must be the exact column-weight
/// vector of `matrix` (size cols(); e.g. an IncrementalColumnWeights
/// maintained as the rows arrived — docs/STREAMING.md). The weight pass is
/// then skipped entirely — the screen "starts hot" — and only the per-shard
/// top-k selection and the extraction pass run. Because the selection reads
/// the same weights the skipped pass would have produced, under the same
/// shard partition and the same (weight desc, id asc) merge, the result is
/// bit-identical to the cold path.
ScreenedColumns ScreenHeaviestColumns(
    const BitMatrix& matrix, std::size_t n_prime, ThreadPool* pool = nullptr,
    const std::vector<std::uint32_t>* precomputed_weights = nullptr);

/// Selects the indices of the `k` largest values (ties by lower index),
/// returned in descending value order. Helper shared by the screening paths.
std::vector<std::size_t> TopKIndices(const std::vector<std::uint32_t>& values,
                                     std::size_t k);

/// Range-restricted TopKIndices: considers only indices in [begin, end) of
/// `values`, returning global indices. The per-shard selection of the
/// parallel screen; TopKIndices(v, k) == TopKIndicesInRange(v, 0, n, k).
std::vector<std::size_t> TopKIndicesInRange(
    const std::vector<std::uint32_t>& values, std::size_t begin,
    std::size_t end, std::size_t k);

}  // namespace dcs

#endif  // DCS_ANALYSIS_WEIGHT_SCREEN_H_
