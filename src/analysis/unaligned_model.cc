#include "analysis/unaligned_model.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/stats_math.h"

namespace dcs {

UnalignedSignalModel::UnalignedSignalModel(
    const UnalignedModelOptions& options)
    : options_(options) {
  DCS_CHECK(options.array_bits > 0);
  DCS_CHECK(options.num_offsets > 0);
  DCS_CHECK(options.offset_period > 0);
  const double k = static_cast<double>(options.num_offsets);
  p_offset_match_ =
      -std::expm1(-k * k / static_cast<double>(options.offset_period));
  const double n_bits = static_cast<double>(options.array_bits);
  background_row_ones_ =
      n_bits * -std::expm1(-options.background_insertions / n_bits);
}

double UnalignedSignalModel::distinct_content_indices(std::size_t g) const {
  const double n_bits = static_cast<double>(options_.array_bits);
  return n_bits * -std::expm1(-static_cast<double>(g) / n_bits);
}

double UnalignedSignalModel::pattern_row_ones(std::size_t g) const {
  // Content marks ~g' distinct indices; background insertions land uniformly
  // and only add 1s where the content didn't.
  const double n_bits = static_cast<double>(options_.array_bits);
  const double g_distinct = distinct_content_indices(g);
  const double background_free = n_bits - g_distinct;
  return g_distinct +
         background_free *
             -std::expm1(-options_.background_insertions / n_bits);
}

double UnalignedSignalModel::MatchExceedProb(std::size_t g,
                                             double p_star) const {
  const auto n_bits = static_cast<std::int64_t>(options_.array_bits);
  const auto i = static_cast<std::int64_t>(
      std::llround(pattern_row_ones(g)));
  const auto g_distinct =
      static_cast<std::int64_t>(std::llround(distinct_content_indices(g)));
  // Threshold calibrated for rows of this fill under the null.
  const std::int64_t lambda = HypergeomUpperThreshold(p_star, n_bits, i, i);
  // Matched pair: g' shared content indices are common for sure; the two
  // backgrounds overlap hypergeometrically on the remaining bits.
  const std::int64_t rest_bits = n_bits - g_distinct;
  const std::int64_t rest_ones = std::max<std::int64_t>(0, i - g_distinct);
  const std::int64_t needed = lambda - g_distinct;  // X > lambda.
  if (needed < 0) return 1.0;
  return std::exp(LogHypergeomSf(needed, rest_bits, rest_ones, rest_ones));
}

double UnalignedSignalModel::PatternEdgeProb(std::size_t g, double p_star,
                                             double p1) const {
  const double p2 =
      p_offset_match_ * MatchExceedProb(g, p_star) + p1;
  return std::min(1.0, p2);
}

}  // namespace dcs
