#ifndef DCS_ANALYSIS_LAMBDA_TABLE_H_
#define DCS_ANALYSIS_LAMBDA_TABLE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace dcs {

class ThreadPool;

/// \brief The paper's threshold table Lambda = {lambda_{i,j}} (Section IV-B).
///
/// For two sketch rows with i and j ones out of N bits, the number of common
/// 1s under the null (no matching content) is hypergeometric; lambda_{i,j}
/// is the smallest threshold with P[X(i,j) > lambda_{i,j}] <= p_star, making
/// the per-row-pair false-alarm probability uniform regardless of row fill.
/// Entries are computed lazily and cached (the scan touches only the narrow
/// band of observed fills); the cache is lock-free and safe for concurrent
/// readers.
///
/// Deliberately lock-free — no dcs::Mutex, no DCS_GUARDED_BY: every cache
/// slot is an independent atomic whose value is a pure function of its
/// index, so two threads racing to fill the same slot write the same bits
/// and a relaxed publish is enough (the worst case is duplicated
/// computation, counted in cache_misses()). Putting the pair-scan's hottest
/// lookup behind a lock would serialize exactly the work the ThreadPool
/// shards. Same reasoning as the Counter/Gauge values in obs/metrics.h.
class LambdaTable {
 public:
  /// Table for rows of `array_bits` bits at per-pair false-alarm level
  /// `p_star`.
  LambdaTable(std::size_t array_bits, double p_star);

  /// lambda_{i,j}; symmetric in (i, j). i, j must be <= array_bits.
  std::int64_t Threshold(std::uint32_t i, std::uint32_t j) const;

  /// Precomputes lambda_{i,j} for every unordered pair of the distinct
  /// non-zero values in `row_weights` (duplicates and zeros — rows the scan
  /// skips — are dropped), sharded over `pool` when non-null. Each pair
  /// lands in exactly one shard and every entry is a pure function of
  /// (i, j), so the cache contents, the miss count, and all later
  /// Threshold() results are bit-identical at any thread count. Idempotent:
  /// already-cached entries cost one relaxed load.
  void Calibrate(std::span<const std::uint32_t> row_weights,
                 ThreadPool* pool) const;

  /// Lookups that had to compute a fresh entry (cache misses). Hits are not
  /// counted individually — the scan already counts row-pair compares, and
  /// every compare is exactly one lookup, so hit rate = 1 - misses/lookups
  /// without touching a shared counter on the hot path.
  std::uint64_t cache_misses() const {
    return cache_misses_.load(std::memory_order_relaxed);
  }

  std::size_t array_bits() const { return array_bits_; }
  double p_star() const { return p_star_; }

  /// The edge probability between two null groups when each group
  /// contributes `arrays` rows and any of the arrays^2 row pairs can fire:
  /// p1 = 1 - (1 - p_star)^(arrays^2) (Section IV-B).
  static double EdgeProbFromPStar(double p_star, std::size_t arrays);

  /// Inverse of the above: the p_star achieving a target null edge
  /// probability p1.
  static double PStarFromEdgeProb(double p1, std::size_t arrays);

 private:
  std::size_t array_bits_;
  double p_star_;
  // -1 = not yet computed. Benign duplicated computation on races.
  mutable std::vector<std::atomic<std::int32_t>> cache_;
  mutable std::atomic<std::uint64_t> cache_misses_{0};
};

}  // namespace dcs

#endif  // DCS_ANALYSIS_LAMBDA_TABLE_H_
