#include "analysis/correlation.h"

#include <algorithm>

#include "common/distributions.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {

GroupPairCorrelation CorrelateGroups(std::span<const BitVector> rows_a,
                                     std::span<const BitVector> rows_b) {
  GroupPairCorrelation best;
  // Ties break toward the lowest (row_a, row_b) lexicographically: counts
  // for the whole B group are computed in one batched kernel call, and the
  // strict `>` scan in ascending (i, j) order keeps the first maximum.
  std::vector<std::uint32_t> counts(rows_b.size());
  for (std::uint32_t i = 0; i < rows_a.size(); ++i) {
    rows_a[i].CommonOnesBatch(rows_b, counts);
    for (std::uint32_t j = 0; j < rows_b.size(); ++j) {
      if (counts[j] > best.max_common) {
        best.max_common = counts[j];
        best.row_a = i;
        best.row_b = j;
      }
    }
  }
  return best;
}

PairScanPlan PlanGroupPairScan(std::size_t num_groups,
                               const PairScanOptions& options) {
  PairScanPlan plan;
  std::vector<std::uint32_t>& sampled = plan.sampled;
  if (options.group_sample_rate >= 1.0) {
    sampled.resize(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g) {
      sampled[g] = static_cast<std::uint32_t>(g);
    }
  } else if (num_groups < 2) {
    // No pairs exist; sampling is moot. Returning the trivial group list
    // (rather than sampling) keeps SampleWithoutReplacement's k <= n
    // contract intact — the old code asked it for 2 of {0, 1} and aborted.
    sampled.resize(num_groups);
    for (std::size_t g = 0; g < num_groups; ++g) {
      sampled[g] = static_cast<std::uint32_t>(g);
    }
  } else {
    DCS_CHECK(options.group_sample_rate > 0.0);
    const auto keep = static_cast<std::uint64_t>(
        options.group_sample_rate * static_cast<double>(num_groups));
    // At least 2 so a sampled scan always has a pair to visit, but never
    // more than the population.
    const std::uint64_t want = std::min<std::uint64_t>(
        num_groups, std::max<std::uint64_t>(keep, 2));
    Rng rng(options.sample_seed);
    for (std::uint64_t g : SampleWithoutReplacement(&rng, num_groups, want)) {
      sampled.push_back(static_cast<std::uint32_t>(g));
    }
    std::sort(sampled.begin(), sampled.end());
  }
  // Contiguous ascending ranges of the first index either way; only the
  // range count differs between the serial and pooled plans, never the
  // visit order a shard-order merge reconstructs.
  plan.shards = options.pool != nullptr
                    ? options.pool->ShardsFor(sampled.size())
                    : MakeShards(sampled.size(), 1);
  return plan;
}

void RunGroupPairScan(
    const PairScanPlan& plan, const PairScanOptions& options,
    const std::function<void(const ShardRange&, std::uint32_t,
                             std::uint32_t)>& visit) {
  const std::vector<std::uint32_t>& sampled = plan.sampled;
  // Hoisted so the hot loops touch only lock-free metric objects (the name
  // lookup takes the registry mutex once per scan, not per task).
  const bool obs = ObsEnabled();
  LatencyHistogram* task_hist =
      obs && options.pool != nullptr
          ? &ObsHistogram("stage.pairscan_task.ns")
          : nullptr;

  auto scan_shard = [&](const ShardRange& shard) {
    StageStopwatch watch;
    if (task_hist != nullptr) watch.Start();
    for (std::size_t i = shard.begin; i < shard.end; ++i) {
      for (std::size_t j = i + 1; j < sampled.size(); ++j) {
        visit(shard, sampled[i], sampled[j]);
      }
    }
    if (task_hist != nullptr) task_hist->Record(watch.ElapsedNanos());
  };
  if (options.pool == nullptr) {
    for (const ShardRange& shard : plan.shards) scan_shard(shard);
  } else {
    options.pool->RunShards(plan.shards, scan_shard);
  }

  if (obs) {
    const std::uint64_t s = sampled.size();
    ObsCounter("pairscan.scans").Increment();
    ObsCounter("pairscan.groups_scanned").Add(s);
    ObsCounter("pairscan.pairs_visited").Add(s * (s - 1) / 2);
  }
}

std::vector<std::uint32_t> ForEachGroupPair(
    std::size_t num_groups, const PairScanOptions& options,
    const std::function<void(std::uint32_t, std::uint32_t)>& visit) {
  PairScanPlan plan = PlanGroupPairScan(num_groups, options);
  RunGroupPairScan(plan, options,
                   [&](const ShardRange&, std::uint32_t g1, std::uint32_t g2) {
                     visit(g1, g2);
                   });
  return std::move(plan.sampled);
}

}  // namespace dcs
