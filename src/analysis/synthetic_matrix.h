#ifndef DCS_ANALYSIS_SYNTHETIC_MATRIX_H_
#define DCS_ANALYSIS_SYNTHETIC_MATRIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_matrix.h"
#include "common/rng.h"
#include "analysis/weight_screen.h"

namespace dcs {

/// Parameters of the paper's aligned-case Monte-Carlo model (Section V-A):
/// an m x n matrix of Bernoulli(1/2) noise with an a x b all-1 pattern
/// planted at random rows/columns.
struct SyntheticAlignedOptions {
  std::size_t m = 1000;       ///< Rows (routers).
  std::size_t n = 4u << 20;   ///< Columns (bitmap width, 4 Mbit).
  std::size_t n_prime = 4000; ///< Heaviest columns kept by the screen.
  std::size_t pattern_rows = 0;  ///< a; 0 plants no pattern.
  std::size_t pattern_cols = 0;  ///< b.
};

/// Screened synthetic matrix plus ground truth for scoring detectors.
struct SyntheticScreened {
  ScreenedColumns screened;
  /// True pattern rows (ascending), empty when no pattern was planted.
  std::vector<std::uint32_t> pattern_rows;
  /// screened.columns[i] is a planted pattern column.
  std::vector<char> is_pattern_column;
  /// Number of planted columns that survived the screen (the paper's
  /// "columns contained in the pattern and also in S1", 15 in Fig 7).
  std::size_t pattern_columns_in_screen = 0;
};

/// \brief Samples the screened view of the planted matrix *without
/// materializing the n columns* — exact, not approximate.
///
/// The refined detector consumes only (i) every column's weight and (ii) the
/// bits of the n' screened columns. Noise column weights are iid
/// Binomial(m, 1/2) and, conditioned on its weight w, a noise column is a
/// uniform w-subset of rows; a planted column is all pattern rows plus a
/// uniform (w-a)-subset of the rest with w = a + Binomial(m-a, 1/2). This
/// routine samples exactly that: per-weight noise counts from the
/// multinomial (sequential conditional binomials, high weight first), the
/// screen cutoff with exact tie handling, then bits only for survivors.
/// Runs in O(n_prime * m / 64 + m) time versus O(n * m / 64) for the literal
/// matrix — the factor that makes paper-scale (n = 4M) Monte-Carlo feasible.
SyntheticScreened SampleScreenedAligned(const SyntheticAlignedOptions& options,
                                        Rng* rng);

/// Literal counterpart used for cross-validation at small n: materializes
/// the full m x n matrix with the planted pattern. Returns the matrix and
/// fills the ground-truth outputs.
BitMatrix SampleLiteralAligned(const SyntheticAlignedOptions& options,
                               Rng* rng,
                               std::vector<std::uint32_t>* pattern_rows,
                               std::vector<std::size_t>* pattern_cols);

}  // namespace dcs

#endif  // DCS_ANALYSIS_SYNTHETIC_MATRIX_H_
