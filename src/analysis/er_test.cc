#include "analysis/er_test.h"

#include <algorithm>
#include <cmath>

#include "graph/connected_components.h"
#include "obs/metrics.h"

namespace dcs {

ErTestResult RunErTest(const Graph& graph, std::size_t threshold) {
  ErTestResult result;
  result.largest_component = LargestComponentSize(graph);
  result.pattern_detected = result.largest_component > threshold;
  if (ObsEnabled()) {
    ObsCounter("ertest.runs").Increment();
    if (result.pattern_detected) ObsCounter("ertest.detections").Increment();
    ObsGauge("ertest.largest_component")
        .Set(static_cast<double>(result.largest_component));
  }
  return result;
}

std::size_t DefaultErTestThreshold(std::size_t num_vertices) {
  if (num_vertices < 2) return 1;
  return static_cast<std::size_t>(
      std::max(8.0, 8.7 * std::log(static_cast<double>(num_vertices))));
}

}  // namespace dcs
