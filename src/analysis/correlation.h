#ifndef DCS_ANALYSIS_CORRELATION_H_
#define DCS_ANALYSIS_CORRELATION_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/bit_vector.h"
#include "common/rng.h"
#include "common/thread_pool.h"

namespace dcs {

/// Pairwise row-correlation statistics between two groups of sketch rows.
struct GroupPairCorrelation {
  /// Max over all (row of A) x (row of B) of the number of common 1s.
  std::uint32_t max_common = 0;
  /// The row pair achieving it (indices within each group).
  std::uint32_t row_a = 0;
  std::uint32_t row_b = 0;
};

/// Scans all |a| x |b| row pairs; the dominant cost of the unaligned
/// analysis (Section IV-D: "the vast majority of the computational
/// complexity ... comes from computing, for any two rows, the number of
/// indices in which both rows have value 1"). Ties on max_common break
/// toward the lowest (row_a, row_b) pair in lexicographic order, so the
/// result is a deterministic function of the inputs.
GroupPairCorrelation CorrelateGroups(std::span<const BitVector> rows_a,
                                     std::span<const BitVector> rows_b);

/// Drives a function over all unordered group pairs (g1 < g2), optionally
/// parallel over g1 (Section IV-D possibility 3) and optionally restricted
/// to a sampled subset of groups (possibility 2: "sample 10% of the vertices
/// and find a core only in this subset").
struct PairScanOptions {
  /// Parallelize with this pool when set. The callback must then be safe to
  /// invoke concurrently for different g1.
  ThreadPool* pool = nullptr;
  /// Fraction of groups scanned; pairs outside the sample are skipped.
  double group_sample_rate = 1.0;
  /// Seed for the sampling choice.
  std::uint64_t sample_seed = 1;
};

/// Calls visit(g1, g2) for every retained unordered pair. Returns the list
/// of sampled group ids (all groups when sample_rate == 1, and likewise
/// when num_groups < 2 — there are no pairs to sample from, so the scan
/// degenerates gracefully instead of rejecting the request).
std::vector<std::uint32_t> ForEachGroupPair(
    std::size_t num_groups, const PairScanOptions& options,
    const std::function<void(std::uint32_t, std::uint32_t)>& visit);

/// The sampling and sharding decisions of one pair scan, fixed before any
/// work runs. `shards` partitions [0, sampled.size()) — the first-index
/// dimension of the triangular pair loop — into contiguous ascending
/// ranges (one range serially, ShardsFor() ranges on a pool). Because the
/// ranges are contiguous and ascending, per-shard partial results
/// concatenated in ascending `ShardRange::index` order reproduce the
/// serial ascending-(g1, g2) visit order exactly; that merge rule is what
/// makes the sharded graph build bit-identical at any thread count (see
/// docs/PARALLELISM.md).
struct PairScanPlan {
  std::vector<std::uint32_t> sampled;
  std::vector<ShardRange> shards;
};

/// Decides which groups a scan will touch and how the first index is
/// sharded. Deterministic in (num_groups, sample options, pool width) —
/// never in scheduling.
PairScanPlan PlanGroupPairScan(std::size_t num_groups,
                               const PairScanOptions& options);

/// Executes a planned scan: visit(shard, g1, g2) for every retained pair,
/// where `shard` is the plan shard covering the pair's first index. With a
/// pool, shards run concurrently and the callback must be safe for
/// concurrent invocations with distinct shards; within one shard, pairs
/// arrive in ascending (g1, g2) order. Flushes the `pairscan.*` counters
/// and, on a pool, the per-shard `stage.pairscan_task.ns` timings.
void RunGroupPairScan(
    const PairScanPlan& plan, const PairScanOptions& options,
    const std::function<void(const ShardRange&, std::uint32_t,
                             std::uint32_t)>& visit);

}  // namespace dcs

#endif  // DCS_ANALYSIS_CORRELATION_H_
