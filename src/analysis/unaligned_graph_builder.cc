#include "analysis/unaligned_graph_builder.h"

#include <mutex>

#include "common/logging.h"

namespace dcs {

Graph BuildCorrelationGraph(const BitMatrix& matrix,
                            const LambdaTable& lambda,
                            const GraphBuilderOptions& options) {
  const std::size_t arrays = options.arrays_per_group;
  DCS_CHECK(arrays > 0);
  DCS_CHECK(matrix.rows() % arrays == 0);
  const std::size_t num_groups = matrix.rows() / arrays;

  // Row weights once; the lambda lookup needs them per pair.
  std::vector<std::uint32_t> row_ones(matrix.rows());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    row_ones[r] = static_cast<std::uint32_t>(matrix.row(r).CountOnes());
  }

  Graph graph(num_groups);
  std::mutex edge_mu;  // Only contended in the parallel path.
  const bool parallel = options.scan.pool != nullptr;

  ForEachGroupPair(
      num_groups, options.scan,
      [&](std::uint32_t g1, std::uint32_t g2) {
        const std::size_t base1 = g1 * arrays;
        const std::size_t base2 = g2 * arrays;
        for (std::size_t i = 0; i < arrays; ++i) {
          const BitVector& row1 = matrix.row(base1 + i);
          const std::uint32_t ones1 = row_ones[base1 + i];
          if (ones1 == 0) continue;
          for (std::size_t j = 0; j < arrays; ++j) {
            const std::uint32_t ones2 = row_ones[base2 + j];
            if (ones2 == 0) continue;
            const auto common = static_cast<std::int64_t>(
                row1.CommonOnes(matrix.row(base2 + j)));
            if (common > lambda.Threshold(ones1, ones2)) {
              if (parallel) {
                std::scoped_lock lock(edge_mu);
                graph.AddEdge(g1, g2);
              } else {
                graph.AddEdge(g1, g2);
              }
              return;  // At most one edge per group pair.
            }
          }
        }
      });

  graph.Finalize();
  return graph;
}

}  // namespace dcs
