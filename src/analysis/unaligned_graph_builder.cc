#include "analysis/unaligned_graph_builder.h"

#include <atomic>
#include <mutex>
#include <span>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {

Graph BuildCorrelationGraph(const BitMatrix& matrix,
                            const LambdaTable& lambda,
                            const GraphBuilderOptions& options) {
  ScopedStageTimer stage("build_correlation_graph");
  const std::size_t arrays = options.arrays_per_group;
  DCS_CHECK(arrays > 0);
  DCS_CHECK(matrix.rows() % arrays == 0);
  const std::size_t num_groups = matrix.rows() / arrays;
  const bool obs = ObsEnabled();
  const std::uint64_t misses_before = lambda.cache_misses();
  // Accumulated per group pair (one relaxed add amortized over up to
  // arrays^2 row compares), flushed to the registry once per build.
  std::atomic<std::uint64_t> row_pairs_compared{0};

  // Row weights once; the lambda lookup needs them per pair.
  std::vector<std::uint32_t> row_ones(matrix.rows());
  for (std::size_t r = 0; r < matrix.rows(); ++r) {
    row_ones[r] = static_cast<std::uint32_t>(matrix.row(r).CountOnes());
  }

  Graph graph(num_groups);
  std::mutex edge_mu;  // Only contended in the parallel path.
  const bool parallel = options.scan.pool != nullptr;

  ForEachGroupPair(
      num_groups, options.scan,
      [&](std::uint32_t g1, std::uint32_t g2) {
        const std::size_t base1 = g1 * arrays;
        const std::size_t base2 = g2 * arrays;
        // Group 2's rows are contiguous in the matrix, so one batched
        // kernel call per row1 covers the whole inner loop. Thresholds are
        // still consulted in the original (i, j) order with the same
        // zero-row skips, so compares / edge choice / lambda cache traffic
        // are unchanged.
        const std::span<const BitVector> group2(&matrix.row(base2), arrays);
        std::vector<std::uint32_t> common_counts(arrays);
        std::uint64_t compares = 0;
        for (std::size_t i = 0; i < arrays; ++i) {
          const BitVector& row1 = matrix.row(base1 + i);
          const std::uint32_t ones1 = row_ones[base1 + i];
          if (ones1 == 0) continue;
          row1.CommonOnesBatch(group2, common_counts);
          for (std::size_t j = 0; j < arrays; ++j) {
            const std::uint32_t ones2 = row_ones[base2 + j];
            if (ones2 == 0) continue;
            ++compares;
            const auto common = static_cast<std::int64_t>(common_counts[j]);
            if (common > lambda.Threshold(ones1, ones2)) {
              if (obs) {
                row_pairs_compared.fetch_add(compares,
                                             std::memory_order_relaxed);
              }
              if (parallel) {
                std::scoped_lock lock(edge_mu);
                graph.AddEdge(g1, g2);
              } else {
                graph.AddEdge(g1, g2);
              }
              return;  // At most one edge per group pair.
            }
          }
        }
        if (obs) {
          row_pairs_compared.fetch_add(compares, std::memory_order_relaxed);
        }
      });

  graph.Finalize();
  if (obs) {
    const std::uint64_t compares =
        row_pairs_compared.load(std::memory_order_relaxed);
    const std::uint64_t misses = lambda.cache_misses() - misses_before;
    ObsCounter("pairscan.row_pairs_compared").Add(compares);
    ObsCounter("pairscan.edges_emitted").Add(graph.num_edges());
    ObsCounter("lambda.cache_misses").Add(misses);
    ObsCounter("lambda.lookups").Add(compares);
    if (compares > 0) {
      ObsGauge("lambda.cache_hit_rate")
          .Set(1.0 - static_cast<double>(misses) /
                         static_cast<double>(compares));
    }
  }
  return graph;
}

}  // namespace dcs
