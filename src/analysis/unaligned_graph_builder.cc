#include "analysis/unaligned_graph_builder.h"

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace dcs {

Graph BuildCorrelationGraph(const BitMatrix& matrix,
                            const LambdaTable& lambda,
                            const GraphBuilderOptions& options) {
  ScopedStageTimer stage("build_correlation_graph");
  const std::size_t arrays = options.arrays_per_group;
  DCS_CHECK(arrays > 0);
  DCS_CHECK(matrix.rows() % arrays == 0);
  const std::size_t num_groups = matrix.rows() / arrays;
  const bool obs = ObsEnabled();
  const std::uint64_t misses_before = lambda.cache_misses();
  ThreadPool* pool = options.scan.pool;

  // Row weights once; the lambda lookup needs them per pair. Pure per-row
  // writes, so the sharded pass needs no merge at all.
  std::vector<std::uint32_t> row_ones(matrix.rows());
  {
    ScopedStageTimer timer("unaligned_row_weights");
    auto weigh = [&](std::size_t r) {
      row_ones[r] = static_cast<std::uint32_t>(matrix.row(r).CountOnes());
    };
    if (pool != nullptr) {
      pool->ParallelFor(matrix.rows(), weigh);
    } else {
      for (std::size_t r = 0; r < matrix.rows(); ++r) weigh(r);
    }
  }

  // Sharded lambda calibration: precompute the threshold for every pair of
  // observed row weights, so the scan below runs against a warm cache
  // instead of serializing hypergeometric solves through first-touch
  // misses.
  {
    ScopedStageTimer timer("unaligned_lambda_calibrate");
    lambda.Calibrate(row_ones, pool);
  }
  const std::uint64_t misses_after_calibration = lambda.cache_misses();

  // The scan proper. Each shard appends candidate edges to its own buffer;
  // shards are contiguous ascending ranges of the first group index, so
  // concatenating the buffers in ascending shard order reproduces the
  // serial emission order exactly — no mutex, no ordering leak.
  const PairScanPlan plan = PlanGroupPairScan(num_groups, options.scan);
  using Edge = std::pair<std::uint32_t, std::uint32_t>;
  std::vector<std::vector<Edge>> shard_edges(plan.shards.size());
  // Per-shard scratch for the batched kernel counts, and per-shard compare
  // tallies (summed once at the end — integer sums are merge-order-free).
  std::vector<std::vector<std::uint32_t>> shard_counts(plan.shards.size());
  std::vector<std::uint64_t> shard_compares(plan.shards.size(), 0);

  RunGroupPairScan(
      plan, options.scan,
      [&](const ShardRange& shard, std::uint32_t g1, std::uint32_t g2) {
        const std::size_t base1 = g1 * arrays;
        const std::size_t base2 = g2 * arrays;
        // Group 2's rows are contiguous in the matrix, so one batched
        // kernel call per row1 covers the whole inner loop. Thresholds are
        // still consulted in the original (i, j) order with the same
        // zero-row skips, so compares / edge choice / lambda cache traffic
        // are unchanged.
        const std::span<const BitVector> group2(&matrix.row(base2), arrays);
        std::vector<std::uint32_t>& common_counts = shard_counts[shard.index];
        if (common_counts.size() != arrays) common_counts.resize(arrays);
        std::uint64_t compares = 0;
        for (std::size_t i = 0; i < arrays; ++i) {
          const BitVector& row1 = matrix.row(base1 + i);
          const std::uint32_t ones1 = row_ones[base1 + i];
          if (ones1 == 0) continue;
          row1.CommonOnesBatch(group2, common_counts);
          for (std::size_t j = 0; j < arrays; ++j) {
            const std::uint32_t ones2 = row_ones[base2 + j];
            if (ones2 == 0) continue;
            ++compares;
            const auto common = static_cast<std::int64_t>(common_counts[j]);
            if (common > lambda.Threshold(ones1, ones2)) {
              shard_compares[shard.index] += compares;
              shard_edges[shard.index].emplace_back(g1, g2);
              return;  // At most one edge per group pair.
            }
          }
        }
        shard_compares[shard.index] += compares;
      });

  Graph graph(num_groups);
  {
    ScopedStageTimer timer("unaligned_edge_merge");
    for (const std::vector<Edge>& edges : shard_edges) {
      for (const auto& [g1, g2] : edges) graph.AddEdge(g1, g2);
    }
  }
  graph.Finalize();

  if (obs) {
    std::uint64_t compares = 0;
    for (const std::uint64_t c : shard_compares) compares += c;
    const std::uint64_t misses = lambda.cache_misses() - misses_before;
    const std::uint64_t scan_misses =
        lambda.cache_misses() - misses_after_calibration;
    ObsCounter("pairscan.row_pairs_compared").Add(compares);
    ObsCounter("pairscan.edges_emitted").Add(graph.num_edges());
    ObsCounter("lambda.cache_misses").Add(misses);
    ObsCounter("lambda.lookups").Add(compares);
    ObsCounter("unaligned.lambda_calibrated_entries")
        .Add(misses_after_calibration - misses_before);
    ObsGauge("unaligned.scan_shards")
        .Set(static_cast<double>(plan.shards.size()));
    if (compares > 0) {
      // Hit rate of the scan itself; after calibration this should sit at
      // 1.0, so anything lower flags weights the calibration never saw.
      ObsGauge("lambda.cache_hit_rate")
          .Set(1.0 - static_cast<double>(scan_misses) /
                         static_cast<double>(compares));
    }
  }
  return graph;
}

}  // namespace dcs
