#ifndef DCS_ANALYSIS_CLUSTER_SEPARATION_H_
#define DCS_ANALYSIS_CLUSTER_SEPARATION_H_

#include <cstddef>
#include <vector>

#include "graph/graph.h"

namespace dcs {

/// \brief Splits a detected vertex set into per-content clusters
/// (Section II-D).
///
/// The detection pipeline reports one large cluster that can mix several
/// common contents transmitted in the same epoch. Distinct contents
/// correlate only their own carriers: within the dense graph G', two groups
/// carrying the same content connect with probability p2 while carriers of
/// different contents connect at the background rate. The connected
/// components of the subgraph induced on the detected vertices therefore
/// separate the contents; singletons (background vertices dragged in by the
/// core expansion) are dropped via `min_cluster_size`.
struct ClusterSeparationOptions {
  /// Clusters smaller than this are discarded as noise.
  std::size_t min_cluster_size = 3;
  /// An edge only links two detected vertices into one cluster when they
  /// share at least this many common detected neighbors (triangle support).
  /// Within one content's cluster every edge has ~p2^2 * cluster_size
  /// support, while a chance background edge between two different
  /// contents' clusters has essentially none — so raising this cleanly
  /// severs spurious bridges in the dense G' graph. 1 keeps triangles.
  std::size_t min_common_neighbors = 1;
};

/// Connected components of the induced subgraph on `detected`, largest
/// first; each cluster is sorted ascending. Requires a finalized graph and
/// a sorted `detected`.
std::vector<std::vector<Graph::VertexId>> SeparateClusters(
    const Graph& graph, const std::vector<Graph::VertexId>& detected,
    const ClusterSeparationOptions& options);

}  // namespace dcs

#endif  // DCS_ANALYSIS_CLUSTER_SEPARATION_H_
