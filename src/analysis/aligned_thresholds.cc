#include "analysis/aligned_thresholds.h"

#include <cmath>

#include "common/logging.h"
#include "common/stats_math.h"

namespace dcs {

double LogNaturalOccurrenceBound(std::int64_t m, std::int64_t n,
                                 std::int64_t a, std::int64_t b) {
  return LogNaturalOccurrenceBoundDensity(m, n, a, b, 0.5);
}

double LogNaturalOccurrenceBoundDensity(std::int64_t m, std::int64_t n,
                                        std::int64_t a, std::int64_t b,
                                        double density) {
  DCS_CHECK(density > 0.0 && density < 1.0);
  return LogChoose(static_cast<double>(m), static_cast<double>(a)) +
         LogChoose(static_cast<double>(n), static_cast<double>(b)) +
         static_cast<double>(a) * static_cast<double>(b) * std::log(density);
}

bool IsNonNaturallyOccurring(std::int64_t m, std::int64_t n, std::int64_t a,
                             std::int64_t b, double epsilon) {
  DCS_CHECK(epsilon > 0.0);
  return LogNaturalOccurrenceBound(m, n, a, b) <= std::log(epsilon);
}

std::int64_t MinNonNaturallyOccurringB(std::int64_t m, std::int64_t n,
                                       std::int64_t a, double epsilon) {
  if (a <= 0) return -1;
  // The bound is monotone decreasing in b for b well below n/2 (each extra
  // column multiplies it by roughly (n/b) 2^{-a}), so a linear scan from 1
  // finds the frontier; patterns anywhere near n/2 columns are out of scope.
  for (std::int64_t b = 1; b <= n; ++b) {
    if (IsNonNaturallyOccurring(m, n, a, b, epsilon)) return b;
  }
  return -1;
}

namespace {

// Smallest weight threshold t whose expected noise-column survivor count
// fits the budget. Monotone in t, so binary search.
std::int64_t PickWeightThreshold(std::int64_t m, std::int64_t n,
                                 double budget) {
  std::int64_t lo = m / 2;
  std::int64_t hi = m;
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    const double expected =
        static_cast<double>(n) * std::exp(LogBinomSf(mid, m, 0.5));
    if (expected <= budget) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

DetectabilityAnalysis AnalyzeDetectability(std::int64_t m, std::int64_t n,
                                           std::int64_t a, std::int64_t b,
                                           const DetectabilityOptions& opts) {
  DCS_CHECK(a >= 1 && a <= m);
  DCS_CHECK(b >= 1 && b <= n);
  DetectabilityAnalysis out;
  out.weight_threshold = PickWeightThreshold(
      m, n, opts.noise_budget_fraction * static_cast<double>(opts.n_prime));
  out.expected_noise_columns =
      static_cast<double>(n) *
      std::exp(LogBinomSf(out.weight_threshold, m, 0.5));
  // A pattern column has weight a + Binomial(m-a, 1/2); it survives when
  // that exceeds t.
  out.pattern_survival_prob =
      std::exp(LogBinomSf(out.weight_threshold - a, m - a, 0.5));
  // Core width needed for significance inside the screened matrix.
  out.min_core_columns =
      MinNonNaturallyOccurringB(m, opts.n_prime, a, opts.epsilon);
  if (out.min_core_columns < 0) {
    out.detection_prob = 0.0;
    return out;
  }
  out.detection_prob = std::exp(
      LogBinomSf(out.min_core_columns - 1, b, out.pattern_survival_prob));
  return out;
}

std::int64_t DetectableThresholdB(std::int64_t m, std::int64_t n,
                                  std::int64_t a, double target_prob,
                                  std::int64_t max_b,
                                  const DetectabilityOptions& opts) {
  // detection_prob is monotone nondecreasing in b (same survival
  // probability, same required core width, more trials), so binary search.
  std::int64_t lo = 1;
  std::int64_t hi = max_b;
  if (AnalyzeDetectability(m, n, a, hi, opts).detection_prob < target_prob) {
    return -1;
  }
  while (lo < hi) {
    const std::int64_t mid = lo + (hi - lo) / 2;
    if (AnalyzeDetectability(m, n, a, mid, opts).detection_prob >=
        target_prob) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace dcs
