#ifndef DCS_ANALYSIS_INCREMENTAL_WEIGHTS_H_
#define DCS_ANALYSIS_INCREMENTAL_WEIGHTS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/bit_vector.h"

namespace dcs {

/// \brief Running per-column 1-counts of a row-streamed bit matrix.
///
/// The weight screen's first pass rescans all n columns of the stacked
/// epoch matrix — O(rows x n/64) word scans per epoch, paid from scratch
/// every second in continuous operation. This accumulator maintains the
/// same counts *as rows arrive* (one positional-popcount pass per row, via
/// the carry-save AccumulateColumnCounts kernel), so by the time the epoch
/// is analyzed the weights already exist and the screen starts hot.
///
/// Equivalence argument (docs/STREAMING.md): column weights are a sum of
/// per-row indicator vectors over the integers, and integer addition is
/// associative and commutative, so adding rows one digest at a time yields
/// exactly the vector BitMatrix::ColumnWeights() computes from the stacked
/// matrix — not approximately, bit for bit. The differential suite in
/// tests/test_epoch_ring.cc cross-checks this against the oracle every
/// epoch.
class IncrementalColumnWeights {
 public:
  /// Forgets all rows (ring-slot reuse). Capacity is kept so a steady-state
  /// ring never reallocates.
  void Reset();

  /// Adds one row's bits to the running counts. The first row after
  /// construction or Reset() fixes the column count; later rows must match.
  void AddRow(const BitVector& row);

  /// Rows accumulated since the last Reset().
  std::size_t num_rows() const { return num_rows_; }

  /// Columns (0 until the first row arrives).
  std::size_t num_cols() const { return num_cols_; }

  /// weights()[c] == number of accumulated rows with bit c set. Sized
  /// num_cols().
  const std::vector<std::uint32_t>& weights() const { return weights_; }

 private:
  std::size_t num_rows_ = 0;
  std::size_t num_cols_ = 0;
  std::vector<std::uint32_t> weights_;
};

}  // namespace dcs

#endif  // DCS_ANALYSIS_INCREMENTAL_WEIGHTS_H_
