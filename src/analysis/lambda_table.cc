#include "analysis/lambda_table.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.h"
#include "common/stats_math.h"
#include "common/thread_pool.h"

namespace dcs {

LambdaTable::LambdaTable(std::size_t array_bits, double p_star)
    : array_bits_(array_bits),
      p_star_(p_star),
      cache_((array_bits + 1) * (array_bits + 1)) {
  DCS_CHECK(p_star > 0.0 && p_star < 1.0);
  for (auto& entry : cache_) {
    entry.store(-1, std::memory_order_relaxed);
  }
}

std::int64_t LambdaTable::Threshold(std::uint32_t i, std::uint32_t j) const {
  DCS_CHECK(i <= array_bits_ && j <= array_bits_);
  if (i > j) std::swap(i, j);
  auto& slot = cache_[static_cast<std::size_t>(i) * (array_bits_ + 1) + j];
  const std::int32_t cached = slot.load(std::memory_order_relaxed);
  if (cached >= 0) return cached;
  cache_misses_.fetch_add(1, std::memory_order_relaxed);
  const std::int64_t lambda = HypergeomUpperThreshold(
      p_star_, static_cast<std::int64_t>(array_bits_), i, j);
  slot.store(static_cast<std::int32_t>(lambda), std::memory_order_relaxed);
  return lambda;
}

void LambdaTable::Calibrate(std::span<const std::uint32_t> row_weights,
                            ThreadPool* pool) const {
  // Distinct non-zero weights, ascending. The scan never looks up a pair
  // involving an empty row, so weight 0 would be wasted work.
  std::vector<std::uint32_t> weights(row_weights.begin(), row_weights.end());
  std::sort(weights.begin(), weights.end());
  weights.erase(std::unique(weights.begin(), weights.end()), weights.end());
  if (!weights.empty() && weights.front() == 0) {
    weights.erase(weights.begin());
  }
  if (weights.empty()) return;
  // Shard over the first weight; iterating i <= j covers each unordered
  // pair exactly once, so shards compute disjoint entries and the miss
  // counter advances by exactly the number of previously-absent entries.
  auto fill_row = [&](std::size_t a) {
    for (std::size_t b = a; b < weights.size(); ++b) {
      Threshold(weights[a], weights[b]);
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(weights.size(), fill_row);
  } else {
    for (std::size_t a = 0; a < weights.size(); ++a) fill_row(a);
  }
}

double LambdaTable::EdgeProbFromPStar(double p_star, std::size_t arrays) {
  const double pairs = static_cast<double>(arrays) * static_cast<double>(arrays);
  return 1.0 - std::exp(pairs * std::log1p(-p_star));
}

double LambdaTable::PStarFromEdgeProb(double p1, std::size_t arrays) {
  DCS_CHECK(p1 > 0.0 && p1 < 1.0);
  const double pairs = static_cast<double>(arrays) * static_cast<double>(arrays);
  return -std::expm1(std::log1p(-p1) / pairs);
}

}  // namespace dcs
